"""Lockstep warp interpreter (the reference executor).

This is the execution model whose inefficiency the paper attacks: a warp
executes one instruction at a time under an *active mask*; at a divergent
branch the mask splits, the two sides run serially, and the lanes
reconverge when their control paths meet again (§I, §II-A).  Because each
*issue* costs the instruction's full latency regardless of how many lanes
are active, divergent code pays twice — exactly the cost CFM's melding
removes.

*How* paths are scheduled and where they reconverge is pluggable: the
warp asks :attr:`MachineConfig.reconvergence` for a
:class:`repro.simt.reconvergence.ReconvergencePolicy` and drives all
control flow through its per-warp scheduler (the classic IPDOM stack by
default, or the stack-less min-PC path list).  The scheduler deals in
block *indices* (position in ``function.blocks``), the same program
counters the fast-path executor uses, so both executors share one
scheduling implementation.

φ nodes are evaluated *on edge transfer* (all reads before all writes),
so blocks themselves only execute non-φ instructions; this is what makes
per-lane φ resolution correct even when lanes arrive at a join from
different predecessors at different times.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.dominators import (
    compute_postdominator_tree,
    immediate_postdominator,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function, GlobalVariable
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    IntrinsicName,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from repro.ir.types import AddressSpace, FloatType, IntType
from repro.ir.scalars import (
    EvalError,
    eval_binary,
    eval_cast,
    eval_fcmp,
    eval_icmp,
)
from repro.ir.values import Argument, Constant, Undef, Value
from repro.obs import WarpTrace

from .config import MachineConfig
from .memory import BlockMemoryView, SHARED_BASE, sizeof
from .metrics import Metrics
from .reconvergence import get_policy


class SimulationError(Exception):
    """Raised on traps: undef observation, division by zero, etc."""


class _UndefValue:
    """Sentinel for LLVM ``undef``; observable uses trap."""

    _instance: "_UndefValue" = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<undef>"


UNDEF = _UndefValue()


def account_memory(metrics: Metrics, config: MachineConfig, static_space: int,
                   addresses: List[int], latency: int) -> None:
    """Charge one memory issue: coalescing, transaction count, cycles.

    Shared by both executors (:class:`Warp` and
    :class:`repro.simt.fastpath.FastWarp`) so the cycle model cannot
    drift between them.  FLAT instructions resolve dynamically; the
    cycle/transaction model uses the space the addresses actually landed
    in, but the ISSUE is counted under its static encoding (vega
    vmem/lds/flat counters).
    """
    resolved_shared = bool(addresses) and addresses[0] >= SHARED_BASE
    if static_space == AddressSpace.SHARED or (
            static_space == AddressSpace.FLAT and resolved_shared):
        transactions = 1
    else:
        transactions = max(1, config.transactions_for(addresses))
    extra = (transactions - 1) * config.extra_transaction_cycles
    metrics.record_memory(static_space, latency + extra, transactions)


class Warp:
    """One warp: ``warp_size`` lanes executing a kernel in lockstep.

    ``run()`` is a generator that yields ``"barrier"`` each time the warp
    reaches a block-wide barrier, letting the block scheduler synchronize
    warps; it returns when every lane has retired.
    """

    def __init__(
        self,
        function: Function,
        lane_thread_ids: Sequence[int],
        block_dim: int,
        block_id: int,
        grid_dim: int,
        args: Dict[Argument, object],
        memory: BlockMemoryView,
        config: MachineConfig,
        metrics: Optional[Metrics] = None,
        trace: Optional[WarpTrace] = None,
        obs: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.function = function
        self.lanes = list(lane_thread_ids)
        self.block_dim = block_dim
        self.block_id = block_id
        self.grid_dim = grid_dim
        self.args = args
        self.memory = memory
        self.config = config
        self.metrics = metrics if metrics is not None else Metrics()
        self.metrics.warp_size = config.warp_size
        # Opt-in divergence tracing (repro.obs): None on every untraced
        # launch, so the hot-path cost is one `is not None` per site.
        self._trace = trace
        # Opt-in aggregate metrics: the launch sink's occupancy observer
        # (None when collection is off — same cost contract as _trace).
        self._obs = obs
        self._registers: Dict[Value, List[object]] = {}
        self._pdt = compute_postdominator_tree(function)
        # Scheduler PCs are block indices in function.blocks order — the
        # same numbering lowering assigns, so both executors agree on
        # what "minimum PC" means under stack-less policies.
        self._blocks: List[BasicBlock] = list(function.blocks)
        self._block_index: Dict[int, int] = {
            id(block): index for index, block in enumerate(self._blocks)}
        self._policy = get_policy(config.reconvergence)
        self._steps = 0

    # ---- operand access ---------------------------------------------------

    def _read(self, value: Value, lane: int):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Undef):
            return UNDEF
        if isinstance(value, Argument):
            return self.args[value]
        if isinstance(value, GlobalVariable):
            return self.memory.var_address(value)
        regs = self._registers.get(value)
        if regs is None:
            raise SimulationError(f"read of unwritten value {value.ref()}")
        return regs[lane]

    def _write(self, instr: Instruction, lane: int, value) -> None:
        regs = self._registers.get(instr)
        if regs is None:
            regs = [UNDEF] * self.config.warp_size
            self._registers[instr] = regs
        regs[lane] = value

    # ---- main loop -----------------------------------------------------------

    def run(self) -> Iterator[str]:
        all_lanes = tuple(range(len(self.lanes)))
        blocks = self._blocks
        scheduler = self._policy.scheduler(
            self._block_index[id(self.function.entry)], all_lanes)
        while True:
            pc, mask, merges = scheduler.next()
            if merges is not None and self._trace is not None:
                for merge_pc, active in merges:
                    self._trace.reconverge(
                        self.metrics.cycles, blocks[merge_pc].name, active)
            if pc is None:
                return
            yield from self._execute_block(blocks[pc], mask, scheduler)
            self._steps += 1
            if self._steps > self.config.max_warp_steps:
                raise SimulationError(
                    f"warp exceeded {self.config.max_warp_steps} block steps; "
                    f"likely non-termination in @{self.function.name}")

    def _execute_block(self, block: BasicBlock, mask: Tuple[int, ...],
                       scheduler) -> Iterator[str]:
        if self._trace is not None:
            self._trace.exec_block(self.metrics.cycles, block.name, len(mask))
        if self._obs is not None:
            self._obs(len(mask))
        for instr in block.instructions:
            if isinstance(instr, Phi):
                continue  # applied on edge transfer
            if isinstance(instr, Branch):
                self._execute_branch(instr, block, mask, scheduler)
                return
            if isinstance(instr, Ret):
                scheduler.retire()
                return
            if isinstance(instr, Call) and instr.is_barrier:
                self.metrics.record_barrier(self.config.latency.barrier_latency)
                yield "barrier"
                continue
            self._execute_simple(instr, mask)

    # ---- straight-line execution ------------------------------------------------

    def _execute_simple(self, instr: Instruction, mask: Tuple[int, ...]) -> None:
        latency = self.config.latency.latency(instr)
        if isinstance(instr, Load):
            addresses = []
            for lane in mask:
                addr = self._read(instr.pointer, lane)
                if addr is UNDEF:
                    raise SimulationError(f"load through undef address: {instr!r}")
                addresses.append(addr)
                self._write(instr, lane, self.memory.load(addr))
            self._record_memory(instr.address_space, addresses, latency)
            return
        if isinstance(instr, Store):
            addresses = []
            for lane in mask:
                addr = self._read(instr.pointer, lane)
                if addr is UNDEF:
                    raise SimulationError(f"store through undef address: {instr!r}")
                addresses.append(addr)
                self.memory.store(addr, self._read(instr.value, lane))
            self._record_memory(instr.address_space, addresses, latency)
            return
        # Pure per-lane computation.
        for lane in mask:
            self._write(instr, lane, self._evaluate(instr, lane))
        self.metrics.record_alu(len(mask), latency)

    def _record_memory(self, static_space: int, addresses: List[int], latency: int) -> None:
        account_memory(self.metrics, self.config, static_space, addresses,
                       latency)

    # ---- control flow --------------------------------------------------------------

    def _transfer(self, pred: BasicBlock, succ: BasicBlock, mask: Tuple[int, ...]) -> None:
        """Evaluate ``succ``'s φs for ``mask`` lanes arriving from ``pred``
        (parallel read-then-write semantics)."""
        phis = succ.phis
        if not phis:
            return
        staged: List[Tuple[Phi, List[object]]] = []
        for phi in phis:
            incoming = phi.incoming_for(pred)
            staged.append((phi, [self._read(incoming, lane) for lane in mask]))
        for phi, values in staged:
            for lane, value in zip(mask, values):
                self._write(phi, lane, value)

    def _execute_branch(self, branch: Branch, block: BasicBlock,
                        mask: Tuple[int, ...], scheduler) -> None:
        latency = self.config.latency.branch_latency
        profile = self.config.profile_branches
        index = self._block_index
        if not branch.is_conditional:
            target = branch.true_successor
            self.metrics.record_branch(latency, divergent=False,
                                       block_name=block.name, profile=profile)
            if self._trace is not None:
                self._trace.branch(self.metrics.cycles, block.name, len(mask))
            self._transfer(block, target, mask)
            scheduler.advance(index[id(target)])
            return

        taken: List[int] = []
        not_taken: List[int] = []
        for lane in mask:
            cond = self._read(branch.condition, lane)
            if cond is UNDEF:
                raise SimulationError(f"branch on undef condition: {branch!r}")
            (taken if cond else not_taken).append(lane)

        if not not_taken or not taken:
            target = branch.true_successor if taken else branch.false_successor
            self.metrics.record_branch(latency, divergent=False,
                                       block_name=block.name, profile=profile)
            if self._trace is not None:
                self._trace.branch(self.metrics.cycles, block.name, len(mask))
            self._transfer(block, target, mask)
            scheduler.advance(index[id(target)])
            return

        # Divergence: the policy decides how the two sides are scheduled
        # and where (or whether) they reconverge; the rpc hint is the
        # immediate post-dominator's index, -1 when the sides never
        # rejoin (multiple rets).
        self.metrics.record_branch(latency, divergent=True,
                                   block_name=block.name, profile=profile)
        if self._trace is not None:
            self._trace.diverge(self.metrics.cycles, block.name,
                                len(taken), len(not_taken))
        rpc = immediate_postdominator(self._pdt, block)
        scheduler.diverge(index[id(branch.true_successor)],
                          index[id(branch.false_successor)],
                          tuple(taken), tuple(not_taken),
                          -1 if rpc is None else index[id(rpc)])
        self._transfer(block, branch.false_successor, tuple(not_taken))
        self._transfer(block, branch.true_successor, tuple(taken))

    # ---- expression evaluation --------------------------------------------------------

    def _evaluate(self, instr: Instruction, lane: int):
        if isinstance(instr, BinaryOp):
            lhs = self._read(instr.lhs, lane)
            rhs = self._read(instr.rhs, lane)
            if lhs is UNDEF or rhs is UNDEF:
                return UNDEF
            try:
                return eval_binary(instr.opcode, lhs, rhs, instr.type)
            except EvalError as exc:
                raise SimulationError(f"{exc}: {instr!r}") from exc
        if isinstance(instr, UnaryOp):
            value = self._read(instr.operand(0), lane)
            return UNDEF if value is UNDEF else -value
        if isinstance(instr, ICmp):
            lhs = self._read(instr.lhs, lane)
            rhs = self._read(instr.rhs, lane)
            if lhs is UNDEF or rhs is UNDEF:
                return UNDEF
            return eval_icmp(instr.predicate, lhs, rhs, instr.lhs.type)
        if isinstance(instr, FCmp):
            lhs = self._read(instr.lhs, lane)
            rhs = self._read(instr.rhs, lane)
            if lhs is UNDEF or rhs is UNDEF:
                return UNDEF
            return eval_fcmp(instr.predicate, lhs, rhs)
        if isinstance(instr, Select):
            cond = self._read(instr.condition, lane)
            if cond is UNDEF:
                # Not an observation point: LLVM's `select undef, a, b` is
                # defined (either operand), and legal speculation (late
                # if-conversion hoisting a CFM select above its guard) can
                # execute one on lanes that never use the result.  Propagate
                # undef; the trap still fires if it reaches a branch, an
                # address, or a stored value.
                return UNDEF
            chosen = instr.true_value if cond else instr.false_value
            return self._read(chosen, lane)
        if isinstance(instr, GetElementPtr):
            base = self._read(instr.base, lane)
            index = self._read(instr.index, lane)
            if base is UNDEF or index is UNDEF:
                return UNDEF
            return base + index * sizeof(instr.base.type.pointee)
        if isinstance(instr, Cast):
            value = self._read(instr.value, lane)
            if value is UNDEF:
                return UNDEF
            try:
                return eval_cast(instr.opcode, value, instr.value.type, instr.type)
            except EvalError as exc:
                raise SimulationError(f"{exc}: {instr!r}") from exc
        if isinstance(instr, Call):
            return self._intrinsic(instr, lane)
        raise SimulationError(f"cannot evaluate {instr!r}")

    def _intrinsic(self, call: Call, lane: int):
        name = call.callee
        if name == IntrinsicName.TID_X:
            return self.lanes[lane]
        if name == IntrinsicName.NTID_X:
            return self.block_dim
        if name == IntrinsicName.CTAID_X:
            return self.block_id
        if name == IntrinsicName.NCTAID_X:
            return self.grid_dim
        if name in (IntrinsicName.MIN, IntrinsicName.MAX):
            lhs = self._read(call.args[0], lane)
            rhs = self._read(call.args[1], lane)
            if lhs is UNDEF or rhs is UNDEF:
                return UNDEF
            return min(lhs, rhs) if name == IntrinsicName.MIN else max(lhs, rhs)
        raise SimulationError(f"unknown intrinsic @{name}")
