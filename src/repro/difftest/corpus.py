"""Failure corpus: persistent, replayable records of every divergence.

When the fuzzer finds a failing kernel it writes two artifacts into the
corpus directory:

``<name>.json``
    The corpus entry — the (shrunk) spec, the arms and input seeds that
    exposed it, every failure message, and shrink statistics.  This is
    the machine-readable record; :func:`replay` re-runs it.

``<name>_repro.py``
    A standalone script with the spec embedded inline.  It needs only
    ``src`` on ``PYTHONPATH`` — no corpus, no fuzzer state — and exits
    non-zero while the failure reproduces.  This is the artifact to
    attach to a bug report.

Entry names are stable (``seed<NNNN>-<kind>``), so re-finding the same
seed overwrites rather than accumulates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .generator import KernelSpec
from .oracle import ALL_ARMS, Verdict, run_oracle

ENTRY_SCHEMA = "repro.difftest.corpus/2"
#: previous layout (no per-arm traces); still readable
ENTRY_SCHEMA_V1 = "repro.difftest.corpus/1"

_REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Standalone repro for a repro.difftest divergence.

{headline}

Run with the repository's ``src`` directory on PYTHONPATH:

    PYTHONPATH=src python {script_name}

Exits 0 once the failure no longer reproduces.
"""

import sys

from repro.difftest import KernelSpec, run_oracle

SPEC_JSON = r"""
{spec_json}
"""

ARMS = {arms!r}
INPUT_SEEDS = {input_seeds!r}
VALIDATE = {validate!r}


def main() -> int:
    spec = KernelSpec.from_json(SPEC_JSON)
    verdict = run_oracle(spec, arms=ARMS, input_seeds=INPUT_SEEDS,
                         validate=VALIDATE)
    if verdict.ok:
        print("no longer reproduces: all arms agree")
        return 0
    for failure in verdict.failures:
        print(failure)
    return 1


if __name__ == "__main__":
    sys.exit(main())
'''


@dataclass
class CorpusEntry:
    """One recorded failure, as loaded from disk."""

    name: str
    spec: KernelSpec
    arms: Sequence[str]
    input_seeds: Sequence[int]
    failures: List[str]
    #: statement count of the unshrunk spec (== statements if not shrunk)
    original_statements: int
    statements: int
    injected_bug: Optional[str] = None
    #: whether the recording run had meld translation validation on —
    #: :func:`replay` re-enables it so validate-class failures reproduce
    validate: bool = False
    #: per failing arm: pass-span trace events + melding decision log
    #: (schema /2; empty for entries recorded under /1)
    traces: List[dict] = field(default_factory=list)
    path: Optional[Path] = None


def entry_name(spec: KernelSpec, verdict: Verdict) -> str:
    kind = verdict.failures[0].kind if verdict.failures else "ok"
    return f"seed{spec.seed:06d}-{kind}"


def write_entry(corpus_dir: Path, spec: KernelSpec, verdict: Verdict,
                original_statements: Optional[int] = None,
                input_seeds: Sequence[int] = (0, 1),
                injected_bug: Optional[str] = None,
                traces: Optional[Sequence[dict]] = None,
                validate: bool = False) -> Path:
    """Write the JSON entry + standalone repro script; return entry path.

    ``traces`` (one per failing arm, from
    :func:`repro.difftest.oracle.arm_trace`) embeds each arm's
    compile-pass trace events and melding decision log into the entry,
    so a recorded failure explains what the compiler did without
    re-running it.
    """
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = entry_name(spec, verdict)
    arms = list(verdict.arms)
    entry = {
        "schema": ENTRY_SCHEMA,
        "name": name,
        "spec": json.loads(spec.to_json()),
        "arms": arms,
        "input_seeds": list(input_seeds),
        "failures": [str(f) for f in verdict.failures],
        "original_statements": (original_statements
                                if original_statements is not None
                                else spec.statement_count()),
        "statements": spec.statement_count(),
        "injected_bug": injected_bug,
        "validate": validate,
        "traces": list(traces or []),
    }
    entry_path = corpus_dir / f"{name}.json"
    entry_path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")

    headline = entry["failures"][0] if entry["failures"] else "(no failure)"
    script_name = f"{name}_repro.py"
    script = _REPRO_TEMPLATE.format(
        headline=headline, script_name=script_name,
        spec_json=spec.to_json(), arms=tuple(arms),
        input_seeds=tuple(input_seeds), validate=validate)
    (corpus_dir / script_name).write_text(script)
    return entry_path


def load_entry(path: Path) -> CorpusEntry:
    """Read a corpus entry of either schema version (/1 entries load
    with an empty ``traces`` list)."""
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema") not in (ENTRY_SCHEMA, ENTRY_SCHEMA_V1):
        raise ValueError(f"{path}: not a corpus entry "
                         f"(schema {data.get('schema')!r})")
    return CorpusEntry(
        name=data["name"],
        spec=KernelSpec.from_json(json.dumps(data["spec"])),
        arms=tuple(data["arms"]),
        input_seeds=tuple(data["input_seeds"]),
        failures=list(data["failures"]),
        original_statements=data["original_statements"],
        statements=data["statements"],
        injected_bug=data.get("injected_bug"),
        validate=bool(data.get("validate", False)),
        traces=list(data.get("traces", [])),
        path=path,
    )


def replay(path: Path) -> Verdict:
    """Re-run a corpus entry's oracle; see ``Verdict.ok`` for the result.

    Replays under the *current* compiler — a fixed bug replays clean.
    Entries recorded under an injected bug (``injected_bug`` set) replay
    clean unless the same bug is re-injected around this call.
    """
    entry = load_entry(path)
    arms = tuple(a for a in entry.arms if a in ALL_ARMS) or ALL_ARMS
    return run_oracle(entry.spec, arms=arms, input_seeds=entry.input_seeds,
                      validate=entry.validate)


def list_entries(corpus_dir: Path) -> List[CorpusEntry]:
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        try:
            entries.append(load_entry(path))
        except (ValueError, KeyError):
            continue
    return entries
