"""Delta-debugging shrinker for failing kernel specs.

Works at the DSL-statement level, never on raw IR: candidate reductions
are edits of the spec's statement tree, so every candidate rebuilds
through the same :class:`~repro.kernels.KernelBuilder` path a fresh
kernel would and the shrunk result is a *program*, directly pasteable
into a regression test.

Reductions tried, to a fixpoint (first accepted edit restarts the scan):

1. delete any single statement (at any nesting depth);
2. splice a region open — replace an ``if`` by its then- or else-body,
   a loop by one copy of its body;
3. drop an ``if``'s else-branch;
4. shorten an ``op`` statement's operation list.

The predicate is arbitrary (``is_failing(spec) -> bool``); the CLI and
the mutation tests pass one that re-runs the differential oracle, so a
candidate only survives if it still reproduces the original failure.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from .generator import KernelSpec, Stmt, count_statements

Predicate = Callable[[KernelSpec], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    spec: KernelSpec
    original_statements: int
    statements: int
    #: candidate specs evaluated (oracle invocations)
    attempts: int
    rounds: int


def _edits(body: List[Stmt]) -> Iterator[Tuple[str, List[Stmt]]]:
    """Yield ``(description, edited_body)`` candidates, smallest-first.

    Each candidate is a deep-copied top-level body with exactly one edit
    applied somewhere in the tree.
    """

    def at(index: int, replacement: List[Stmt]) -> List[Stmt]:
        return body[:index] + replacement + body[index + 1:]

    for index, stmt in enumerate(body):
        yield f"delete {stmt['kind']}", at(index, [])

    for index, stmt in enumerate(body):
        kind = stmt["kind"]
        if kind == "if":
            yield "splice then-body", at(index, stmt["then"])
            if stmt.get("else"):
                yield "splice else-body", at(index, stmt["else"])
                dropped = dict(stmt)
                dropped["else"] = None
                yield "drop else-branch", at(index, [dropped])
        elif kind in ("for", "divloop"):
            yield f"splice {kind} body", at(index, stmt["body"])
        elif kind == "op" and len(stmt["ops"]) > 1:
            for drop in range(len(stmt["ops"])):
                shorter = dict(stmt)
                shorter["ops"] = stmt["ops"][:drop] + stmt["ops"][drop + 1:]
                yield "shorten op list", at(index, [shorter])

    # Recurse: the same edits inside nested bodies.
    for index, stmt in enumerate(body):
        kind = stmt["kind"]
        children = []
        if kind == "if":
            children.append(("then", stmt["then"]))
            if stmt.get("else"):
                children.append(("else", stmt["else"]))
        elif kind in ("for", "divloop"):
            children.append(("body", stmt["body"]))
        for key, child in children:
            for description, edited_child in _edits(child):
                edited = dict(stmt)
                edited[key] = edited_child
                yield f"{description} (nested)", at(index, [edited])


def _with_body(spec: KernelSpec, body: List[Stmt]) -> KernelSpec:
    return KernelSpec(seed=spec.seed, block_dim=spec.block_dim,
                      grid_dim=spec.grid_dim, n=spec.n,
                      body=copy.deepcopy(body))


def shrink(spec: KernelSpec, is_failing: Predicate,
           max_attempts: int = 2000) -> ShrinkResult:
    """Minimize ``spec`` while ``is_failing`` holds.

    Greedy first-accept with restart: scan the edit list; the first edit
    that still fails becomes the new baseline and the scan restarts.
    Terminates when a full scan accepts nothing (1-minimal w.r.t. the
    edit set) or at ``max_attempts`` oracle invocations.
    """
    if not is_failing(spec):
        raise ValueError("shrink() called with a spec that does not fail")
    original = spec.statement_count()
    current = spec
    attempts = 0
    rounds = 0

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        rounds += 1
        for _, edited_body in _edits(current.body):
            if not edited_body:
                continue  # an empty kernel fails nothing interesting
            if attempts >= max_attempts:
                break
            candidate = _with_body(current, edited_body)
            attempts += 1
            try:
                still_failing = is_failing(candidate)
            except Exception:
                # A candidate that breaks the harness itself (e.g. an
                # unbuildable spec) is simply not taken.
                still_failing = False
            if still_failing:
                current = candidate
                progress = True
                break

    return ShrinkResult(spec=current, original_statements=original,
                        statements=current.statement_count(),
                        attempts=attempts, rounds=rounds)
