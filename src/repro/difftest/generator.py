"""Seeded random kernel generator over the builder DSL.

A *kernel spec* is a small, JSON-serializable program in a statement
grammar shaped like the paper's divergence patterns: sequences of
divergent if/else regions (SESE chains), nested regions, loops with
divergent bodies (constant- and runtime-bound, plus per-thread trip
counts), and barrier-separated shared-memory staging.  Specs — not IR —
are the unit the delta-debugging shrinker edits, so every statement is
self-contained and any statement can be deleted (or any region spliced
open) leaving a well-formed program.

Race discipline: every global-memory statement reads and writes only the
executing thread's own slot (or a bijective remap of it at uniform
nesting depth), and shared-memory staging keeps its stores and
permuted loads on opposite sides of a barrier — so every generated
kernel is deterministic and any cross-arm output difference is a real
miscompile, never input-program UB.

``generate_spec(seed)`` is pure: the same seed always yields the same
spec, the same DSL statements, and bit-identical printed IR.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import repro
from repro import GLOBAL_I32_PTR, SHARED_I32_PTR, I32, ICmpPredicate, KernelBuilder

Stmt = Dict[str, object]

#: closed set of value operations the generated bodies draw from
#: (no division: a generated divisor could be zero, and UB in the input
#: program would masquerade as a melder bug)
OPS: Dict[str, Callable] = {
    "add": lambda k, x, y: k.add(x, y),
    "sub": lambda k, x, y: k.sub(x, y),
    "mul": lambda k, x, y: k.mul(x, y),
    "xor": lambda k, x, y: k.xor(x, y),
    "and": lambda k, x, y: k.and_(x, y),
    "or": lambda k, x, y: k.or_(x, y),
    "shl": lambda k, x, y: k.shl(x, k.const(1)),
    "ashr": lambda k, x, y: k.ashr(x, k.const(2)),
    "min": lambda k, x, y: k.smin(x, y),
    "max": lambda k, x, y: k.smax(x, y),
}

_OP_NAMES = sorted(OPS)
_COND_KINDS = ("parity", "stripe", "half", "data", "uniform")


@dataclass
class KernelSpec:
    """One generated kernel: launch geometry + a statement program."""

    seed: int
    block_dim: int
    grid_dim: int
    #: value for the uniform scalar parameter %n (runtime loop bound)
    n: int
    body: List[Stmt] = field(default_factory=list)

    @property
    def elements(self) -> int:
        """Length of each global buffer (one slot per thread)."""
        return self.block_dim * self.grid_dim

    def statement_count(self) -> int:
        return count_statements(self.body)

    def to_json(self) -> str:
        return json.dumps({
            "schema": SPEC_SCHEMA,
            "seed": self.seed,
            "block_dim": self.block_dim,
            "grid_dim": self.grid_dim,
            "n": self.n,
            "body": self.body,
        }, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "KernelSpec":
        data = json.loads(text)
        schema = data.get("schema", SPEC_SCHEMA)
        if not schema.startswith("repro.difftest.spec/"):
            raise ValueError(f"not a kernel spec: schema {schema!r}")
        return KernelSpec(seed=data["seed"], block_dim=data["block_dim"],
                          grid_dim=data["grid_dim"], n=data["n"],
                          body=data["body"])


SPEC_SCHEMA = "repro.difftest.spec/1"


def count_statements(stmts: List[Stmt]) -> int:
    """DSL statements in a body, counting region headers and recursing."""
    total = 0
    for stmt in stmts:
        total += 1
        if stmt["kind"] == "if":
            total += count_statements(stmt["then"])
            total += count_statements(stmt.get("else") or [])
        elif stmt["kind"] in ("for", "divloop"):
            total += count_statements(stmt["body"])
    return total


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

def _gen_cond(rng: random.Random) -> Stmt:
    kind = rng.choice(_COND_KINDS)
    cond: Stmt = {"kind": kind}
    if kind == "stripe":
        cond["bit"] = rng.choice([2, 4])
    elif kind == "data":
        cond["array"] = rng.choice(["a", "b"])
        cond["threshold"] = rng.randrange(-60, 60)
    elif kind == "uniform":
        cond["threshold"] = rng.randrange(0, 4)
    return cond


def _gen_op(rng: random.Random, uniform_depth: bool) -> Stmt:
    return {
        "kind": "op",
        "array": rng.choice(["a", "b"]),
        "ops": [rng.choice(_OP_NAMES) for _ in range(rng.randrange(1, 4))],
        "salt": rng.randrange(1, 16),
        # bijective remaps only where every lane executes (see module doc)
        "index": rng.choice(["id", "id", "rev"]) if uniform_depth else "id",
    }


def _gen_mix(rng: random.Random) -> Stmt:
    dst = rng.choice(["a", "b"])
    return {"kind": "mix", "dst": dst, "src": "b" if dst == "a" else "a",
            "op": rng.choice(_OP_NAMES)}


def _gen_body(rng: random.Random, depth: int, budget: List[int],
              uniform: bool, in_loop: bool) -> List[Stmt]:
    """A statement sequence; ``budget`` is a shared countdown cell."""
    stmts: List[Stmt] = []
    for _ in range(rng.randrange(1, 4)):
        if budget[0] <= 0:
            break
        budget[0] -= 1
        roll = rng.random()
        # Region statements need budget left over for their (non-empty)
        # bodies, or the fallback below would bust the hard cap.
        if depth < 2 and budget[0] >= 1 and roll < 0.45:
            cond = _gen_cond(rng)
            then = _gen_body(rng, depth + 1, budget,
                             uniform and cond["kind"] == "uniform", in_loop)
            els = (_gen_body(rng, depth + 1, budget,
                             uniform and cond["kind"] == "uniform", in_loop)
                   if rng.random() < 0.7 and budget[0] >= 1 else None)
            stmts.append({"kind": "if", "cond": cond, "then": then,
                          "else": els})
        elif depth == 0 and not in_loop and budget[0] >= 1 and roll < 0.60:
            bound: Stmt = ({"kind": "const", "trips": rng.randrange(1, 4)}
                           if rng.random() < 0.6 else {"kind": "param"})
            stmts.append({"kind": "for", "bound": bound,
                          "body": _gen_body(rng, depth + 1, budget, uniform,
                                            in_loop=True)})
        elif depth == 0 and not in_loop and budget[0] >= 1 and roll < 0.68:
            stmts.append({"kind": "divloop", "mask": rng.choice([1, 3]),
                          "body": _gen_body(rng, depth + 1, budget, uniform,
                                            in_loop=True)})
        elif uniform and not in_loop and roll < 0.74:
            stmts.append({"kind": "shared_stage", "shift": rng.randrange(0, 4),
                          "op": rng.choice(_OP_NAMES)})
        elif uniform and not in_loop and roll < 0.78:
            stmts.append({"kind": "barrier"})
        elif roll < 0.88:
            stmts.append(_gen_mix(rng))
        else:
            stmts.append(_gen_op(rng, uniform_depth=uniform))
    if stmts:
        return stmts
    # Bodies must be non-empty; the one forced statement is still charged
    # against the budget so ``max_statements`` stays a hard cap.
    budget[0] -= 1
    return [_gen_op(rng, uniform_depth=uniform)]


def generate_spec(seed: int, block_dim: int = 16, grid_dim: int = 2,
                  max_statements: int = 24) -> KernelSpec:
    """Deterministically generate one kernel spec from ``seed``."""
    rng = random.Random(seed)
    budget = [max_statements]
    body = _gen_body(rng, depth=0, budget=budget, uniform=True, in_loop=False)
    return KernelSpec(seed=seed, block_dim=block_dim, grid_dim=grid_dim,
                      n=rng.randrange(1, 4), body=body)


# ---------------------------------------------------------------------------
# lowering: spec -> builder DSL -> IR
# ---------------------------------------------------------------------------

class _Lowering:
    """Emits one spec through a :class:`KernelBuilder`."""

    def __init__(self, spec: KernelSpec, name: str = "difftest") -> None:
        self.spec = spec
        self.k = KernelBuilder(name, params=[("a", GLOBAL_I32_PTR),
                                             ("b", GLOBAL_I32_PTR),
                                             ("n", I32)])
        self.shared = self.k.shared_array("stage", I32, spec.block_dim)
        self.tid = self.k.thread_id()
        self.gtid = self.k.global_thread_id()
        self._arrays = {"a": self.k.param("a"), "b": self.k.param("b")}

    def lower(self) -> KernelBuilder:
        self._emit_body(self.spec.body)
        self.k.finish()
        return self.k

    # ---- helpers ----------------------------------------------------------

    def _index(self, kind: str):
        k = self.k
        if kind == "rev":
            # block_base + (block_dim-1 - tid): bijective within the block
            base = k.sub(self.gtid, self.tid)
            return k.add(base, k.sub(k.const(self.spec.block_dim - 1),
                                     self.tid))
        return self.gtid

    def _cond_value(self, cond: Stmt):
        k, kind = self.k, cond["kind"]
        if kind == "parity":
            return k.icmp(ICmpPredicate.EQ, k.and_(self.tid, k.const(1)),
                          k.const(0))
        if kind == "stripe":
            return k.icmp(ICmpPredicate.EQ,
                          k.and_(self.tid, k.const(cond["bit"])), k.const(0))
        if kind == "half":
            return k.icmp(ICmpPredicate.SLT, self.tid,
                          k.const(self.spec.block_dim // 2))
        if kind == "data":
            value = k.load_at(self._arrays[cond["array"]], self.gtid)
            return k.icmp(ICmpPredicate.SGT, value,
                          k.const(cond["threshold"]))
        if kind == "uniform":
            return k.icmp(ICmpPredicate.SGT, k.param("n"),
                          k.const(cond["threshold"]))
        raise ValueError(f"unknown condition kind {kind!r}")

    # ---- statements -------------------------------------------------------

    def _emit_body(self, stmts: List[Stmt]) -> None:
        for stmt in stmts:
            getattr(self, "_emit_" + stmt["kind"])(stmt)

    def _emit_op(self, stmt: Stmt) -> None:
        k = self.k
        index = self._index(stmt.get("index", "id"))
        array = self._arrays[stmt["array"]]
        acc = k.load_at(array, index)
        for i, op in enumerate(stmt["ops"]):
            acc = OPS[op](k, acc, k.const(stmt["salt"] + i))
        k.store_at(array, index, acc)

    def _emit_mix(self, stmt: Stmt) -> None:
        k = self.k
        dst, src = self._arrays[stmt["dst"]], self._arrays[stmt["src"]]
        value = OPS[stmt["op"]](k, k.load_at(dst, self.gtid),
                                k.load_at(src, self.gtid))
        k.store_at(dst, self.gtid, value)

    def _emit_if(self, stmt: Stmt) -> None:
        cond = self._cond_value(stmt["cond"])
        els = stmt.get("else")
        self.k.if_(cond,
                   lambda: self._emit_body(stmt["then"]),
                   (lambda: self._emit_body(els)) if els else None,
                   name="r")

    def _emit_for(self, stmt: Stmt) -> None:
        k, bound = self.k, stmt["bound"]
        stop = (k.const(bound["trips"]) if bound["kind"] == "const"
                else k.param("n"))
        k.for_range("i", k.const(0), stop,
                    lambda i: self._emit_body(stmt["body"]))

    def _emit_divloop(self, stmt: Stmt) -> None:
        # Per-thread trip count: for (i = 0; i < (tid & mask) + 1; i++)
        k = self.k
        trips = k.add(k.and_(self.tid, k.const(stmt["mask"])), k.const(1))
        k.for_range("d", k.const(0), trips,
                    lambda i: self._emit_body(stmt["body"]))

    def _emit_barrier(self, stmt: Stmt) -> None:
        self.k.barrier()

    def _emit_shared_stage(self, stmt: Stmt) -> None:
        """a[gtid] op= neighbour via LDS: store, barrier, permuted load."""
        k = self.k
        shared = self.shared
        a = self._arrays["a"]
        k.store_at(shared, self.tid, k.load_at(a, self.gtid))
        k.barrier()
        neighbour = k.urem(k.add(self.tid, k.const(stmt["shift"])),
                           k.const(self.spec.block_dim))
        value = OPS[stmt["op"]](k, k.load_at(a, self.gtid),
                                k.load_at(shared, neighbour))
        k.barrier()
        k.store_at(a, self.gtid, value)


def build_kernel(spec: KernelSpec, name: str = "difftest") -> KernelBuilder:
    """Lower ``spec`` to verified SSA IR via the builder DSL."""
    return _Lowering(spec, name).lower()


def make_inputs(spec: KernelSpec, input_seed: int) -> Dict[str, object]:
    """Deterministic launch arguments for one input seed."""
    rng = random.Random(0xD1FF ^ (input_seed * 2654435761) ^ spec.seed)
    return {
        "a": [rng.randrange(-100, 100) for _ in range(spec.elements)],
        "b": [rng.randrange(-100, 100) for _ in range(spec.elements)],
        "n": spec.n,
    }
