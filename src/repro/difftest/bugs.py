"""Deliberate compiler bugs, injectable on demand.

Mutation testing for the differential harness itself: each entry here is
a *named, reversible* sabotage of one transform, applied as a context
manager.  Running the fuzzer under an injected bug must surface failures
— if it doesn't, the oracle has a blind spot.  The test suite asserts
both that each bug is caught and that the shrinker reduces the witness
to a small repro.

The bugs are semantic classics for this codebase:

``swap-select``
    The melder's value blending (§IV-B/Fig. 4) builds
    ``select cond, a, b`` to choose between the true-path and false-path
    values of a meld.  The bug swaps the arms, so every divergent-value
    merge picks the *other* path's value — a silent miscompile that only
    a differential run notices (the IR stays perfectly well-formed).

``drop-undef-phi``
    The melder's PreProcess construction (Fig. 4 of the paper) gives
    every entry φ an ``undef`` incoming value for edges arriving from
    the *other* melded path.  The bug drops that step, leaving entry φs
    whose incoming blocks no longer cover all predecessors — malformed
    IR, caught by ``verify_function`` via the pipeline's
    ``verify_after_each`` hook (a *verifier-class* failure attributed to
    the guilty pass, rather than an output mismatch).

``meld-swap-operand-under-mask``
    After the melder reconciles a divergent operand pair into
    ``select C, vT, vF``, the bug overwrites the false arm with the true
    arm (``select C, vT, vT``).  Whenever the launch geometry makes the
    divergence condition true for every *executing* lane, the false arm
    is dynamically dead: outputs stay bit-identical across all five
    run-and-diff arms, the IR is well-formed, and no lint rule fires.
    Only the symbolic translation validator — which proves the meld
    under **both** mask cases, including the never-executed ``C=false``
    one — reports the region ``INEQUIVALENT`` (a *validate-class*
    failure, the static oracle's blind-spot test).

``drop-barrier``
    DCE treats one barrier call as dead and deletes it.  The IR stays
    well-formed (the verifier is blind), and with one warp per block
    the simulator is blind too — barrier semantics are vacuous inside a
    warp, so every arm still produces bit-identical outputs.  Only the
    *differential-lint* oracle sees it: deleting the barrier between
    the generator's ``shared_stage`` store and its permuted load opens
    a divergent shared-memory race, a new ``shared-memory-race`` ERROR
    the pre-pass IR did not carry, attributed to the DCE pass (a
    *lint-class* failure).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator

import repro.core.melder as _melder
import repro.transforms as _transforms
from repro.ir.instructions import Call, Select


def _swapped_select(condition, true_value, false_value, name=""):
    return Select(condition, false_value, true_value, name)


@contextlib.contextmanager
def _inject_swap_select() -> Iterator[None]:
    original = _melder.Select
    _melder.Select = _swapped_select
    try:
        yield
    finally:
        _melder.Select = original


@contextlib.contextmanager
def _inject_meld_swap_operand_under_mask() -> Iterator[None]:
    original = _melder.Melder._reconcile

    def buggy(self, melded, value_t, value_f):
        value = original(self, melded, value_t, value_f)
        if isinstance(value, Select):
            # select C, vT, vF  ->  select C, vT, vT: invisible wherever
            # the mask's false case never executes at runtime.
            value.set_operand(2, value.operand(1))
        return value

    _melder.Melder._reconcile = buggy
    try:
        yield
    finally:
        _melder.Melder._reconcile = original


class _WithoutExternalPreds:
    """Proxy for a SESESubgraph that hides its external predecessors."""

    def __init__(self, subgraph):
        self._subgraph = subgraph

    def __getattr__(self, attr):
        return getattr(self._subgraph, attr)

    @property
    def external_preds(self):
        return ()


@contextlib.contextmanager
def _inject_drop_undef_phi() -> Iterator[None]:
    original = _melder.Melder._wire_phi

    def buggy(self, clone, phi, own, other):
        return original(self, clone, phi, own, _WithoutExternalPreds(other))

    _melder.Melder._wire_phi = buggy
    try:
        yield
    finally:
        _melder.Melder._wire_phi = original


def _dce_dropping_barrier(function) -> bool:
    changed = _original_dce(function)
    for block in function.blocks:
        for instr in block.instructions:
            if isinstance(instr, Call) and instr.is_barrier:
                instr.erase_from_parent()
                return True
    return changed


_original_dce = _transforms.eliminate_dead_code


@contextlib.contextmanager
def _inject_drop_barrier() -> Iterator[None]:
    # Pipelines bind the "dce" / "late-dce" steps from the
    # ``repro.transforms`` namespace when they are *built*, and the
    # difftest oracle builds fresh pipelines per arm — patching the
    # package attribute is the right seam.
    _transforms.eliminate_dead_code = _dce_dropping_barrier
    try:
        yield
    finally:
        _transforms.eliminate_dead_code = _original_dce


#: name -> context manager factory; ``with BUGS[name]():`` activates it
BUGS: Dict[str, Callable[[], "contextlib.AbstractContextManager[None]"]] = {
    "swap-select": _inject_swap_select,
    "meld-swap-operand-under-mask": _inject_meld_swap_operand_under_mask,
    "drop-undef-phi": _inject_drop_undef_phi,
    "drop-barrier": _inject_drop_barrier,
}


def inject(name: str) -> "contextlib.AbstractContextManager[None]":
    """Context manager that activates the named bug while entered."""
    try:
        return BUGS[name]()
    except KeyError:
        raise ValueError(
            f"unknown bug {name!r} (available: {sorted(BUGS)})") from None
