"""The differential oracle: one kernel, five pipelines, one verdict.

Each generated kernel is compiled under every *arm* of the matrix —

==============  ============================================================
arm             pipeline
==============  ============================================================
``noopt``       DSL output run as-is (the reference semantics)
``o3``          the -O3 fixpoint pipeline
``o3-cfm``      -O3, then the CFM melding pass + §V-A late cleanups
``o3-tail``     -O3, then tail merging + late cleanups
``o3-bf``       -O3, then branch fusion + late cleanups
==============  ============================================================

— with ``verify_function`` run after **every** pass (the
``verify_after_each`` hook of :class:`~repro.transforms.PassPipeline`)
and the :mod:`repro.lint` rules differenced after every pass (the
symmetric ``lint_after_each`` hook): a pass that *introduces* an
error-severity diagnostic the previous IR did not carry — a barrier
moved under divergent control flow, a shared-memory race opened by a
deleted barrier — fails the arm with kind ``"lint"`` and the guilty
pass attached, even when the simulator cannot observe the hazard (a
one-warp block makes a dropped barrier semantically invisible).  After
compilation the ``o3-cfm`` arm additionally runs the meld-legality
audit over the pass's decision log.  The kernels are then launched on
the SIMT machine over several deterministic input sets.  Device memory
is compared bit-for-bit against the ``noopt`` arm; any difference,
verifier error, lint regression or simulator trap becomes a
:class:`Failure` carrying the arm, the guilty pass (when known) and the
first diverging buffer index.

With ``validate=True`` the ``o3-cfm`` arm also runs the *static* oracle:
symbolic translation validation of every meld
(:mod:`repro.analysis.validate`), wired through the pipeline's
``validate_melds`` hook.  An ``INEQUIVALENT`` meld fails the arm with
kind ``"validate"`` whether or not any input set witnesses the
difference — the one oracle class that does not need a run.

One :class:`~repro.simt.GPU` per arm is reused across all input sets via
``GPU.reset()``, so a long fuzzing run touches the device-state
lifecycle the same way a real host application would.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro import (
    BranchFusionPass,
    CFMConfig,
    CFMPass,
    GPU,
    MachineConfig,
    PassPipeline,
    TailMergingPass,
    late_pipeline,
    o3_pipeline,
    verify_function,
)
from repro.analysis import MeldValidationError, validate_melds_hook
from repro.simt import resolve_machine
from repro.obs import MeldingDecision, Tracer, use as use_tracer

from .generator import KernelSpec, build_kernel, make_inputs

#: every arm of the matrix, in reporting order
ALL_ARMS = ("noopt", "o3", "o3-cfm", "o3-tail", "o3-bf")
#: arms that exercise a divergence-reduction pass on top of -O3
MELDING_ARMS = ("o3-cfm", "o3-tail", "o3-bf")


@dataclass
class Failure:
    """One way one arm disagreed with the reference."""

    arm: str
    #: "mismatch" | "verifier" | "lint" | "validate" | "crash"
    kind: str
    detail: str
    #: pass that broke the IR (verifier failures only)
    pass_name: Optional[str] = None
    input_seed: Optional[int] = None

    def __str__(self) -> str:
        where = f" after pass {self.pass_name!r}" if self.pass_name else ""
        inputs = (f" (input seed {self.input_seed})"
                  if self.input_seed is not None else "")
        return f"[{self.arm}] {self.kind}{where}{inputs}: {self.detail}"


@dataclass
class ArmReport:
    """Compile + run outcome of one arm on one kernel."""

    arm: str
    verified_passes: int = 0
    melds: int = 0
    outputs: Optional[List[Dict[str, List[int]]]] = None
    failure: Optional[Failure] = None
    #: the compiled kernel (present when compilation succeeded)
    builder: Optional[object] = field(default=None, repr=False)
    #: the CFM pass's melding decision log (``o3-cfm`` arm only)
    decisions: List[MeldingDecision] = field(default_factory=list, repr=False)


@dataclass
class Verdict:
    """Everything the oracle learned about one kernel spec."""

    spec: KernelSpec
    arms: Dict[str, ArmReport] = field(default_factory=dict)
    failures: List[Failure] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def mismatches(self) -> int:
        return sum(1 for f in self.failures if f.kind == "mismatch")

    @property
    def verifier_failures(self) -> int:
        return sum(1 for f in self.failures if f.kind == "verifier")

    @property
    def lint_failures(self) -> int:
        return sum(1 for f in self.failures if f.kind == "lint")

    @property
    def validate_failures(self) -> int:
        return sum(1 for f in self.failures if f.kind == "validate")


class _PassVerifier:
    """``verify_after_each`` hook that counts and attributes failures."""

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, pass_name: str, function) -> None:
        self.count += 1
        try:
            verify_function(function)
        except Exception as exc:
            raise PassVerificationError(pass_name, exc) from exc


class PassVerificationError(Exception):
    """verify_function failed right after ``pass_name`` ran."""

    def __init__(self, pass_name: str, cause: Exception) -> None:
        self.pass_name = pass_name
        super().__init__(f"IR invalid after pass {pass_name!r}: {cause}")


class PassLintError(Exception):
    """A pass introduced a new error-severity lint diagnostic."""

    def __init__(self, pass_name: str, diagnostics) -> None:
        self.pass_name = pass_name
        self.diagnostics = list(diagnostics)
        rendered = "; ".join(d.render().split("\n")[0]
                             for d in self.diagnostics)
        super().__init__(
            f"pass {pass_name!r} introduced new lint error(s): {rendered}")


class _LintDiffer:
    """``lint_after_each`` hook holding the rolling lint baseline.

    The baseline starts as the input IR's own report (pre-existing
    findings are the generator's responsibility, not any pass's) and
    advances after each clean pass, so a regression is attributed to
    exactly the pass that introduced it.
    """

    def __init__(self, function) -> None:
        self.count = 0
        self.baseline = repro.lint(function)

    def __call__(self, pass_name: str, function) -> None:
        self.count += 1
        report = repro.lint(function)
        new = report.new_errors(self.baseline)
        if new:
            raise PassLintError(pass_name, new)
        self.baseline = report


def _arm_pipeline(arm: str, hook: _PassVerifier,
                  cfm_config: Optional[CFMConfig],
                  lint_hook: Optional[_LintDiffer] = None,
                  validate: bool = False) -> List[PassPipeline]:
    """The pass pipelines one arm runs, in order (empty for ``noopt``)."""
    if arm == "noopt":
        return []
    o3 = o3_pipeline()
    o3.verify_after_each = hook
    o3.lint_after_each = lint_hook
    if arm == "o3":
        return [o3]
    if arm == "o3-cfm" and validate:
        cfm_config = dataclasses.replace(cfm_config or CFMConfig(),
                                         validate=True)
    reducer = {
        "o3-cfm": lambda: CFMPass(cfm_config),
        "o3-tail": TailMergingPass,
        "o3-bf": BranchFusionPass,
    }[arm]()
    # One pipeline hosts the reducer and the late cleanups through the
    # same Pass surface — the point of the unified pass API.  Under
    # ``validate`` the stage also carries the translation-validation
    # hook, so an INEQUIVALENT meld aborts the arm at the guilty pass.
    stage2 = PassPipeline([reducer], verify_after_each=hook,
                          lint_after_each=lint_hook,
                          validate_melds=(validate_melds_hook
                                          if arm == "o3-cfm" and validate
                                          else None))
    for late_pass in late_pipeline().passes:
        stage2.add(late_pass)
    return [o3, stage2]


def _compile_arm(arm: str, spec: KernelSpec,
                 cfm_config: Optional[CFMConfig],
                 lint: bool = True, validate: bool = False) -> ArmReport:
    report = ArmReport(arm=arm)
    hook = _PassVerifier()
    builder = build_kernel(spec)
    function = builder.function
    try:
        lint_hook = (_LintDiffer(function)
                     if lint and arm != "noopt" else None)
        pipelines = _arm_pipeline(arm, hook, cfm_config, lint_hook,
                                  validate=validate)
        for index, pipeline in enumerate(pipelines):
            if index == 0:
                pipeline.run_to_fixpoint(function)  # the -O3 stage
            else:
                pipeline.run(function)
        verify_function(function)
    except PassVerificationError as exc:
        report.failure = Failure(arm=arm, kind="verifier", detail=str(exc),
                                 pass_name=exc.pass_name)
        return report
    except PassLintError as exc:
        report.failure = Failure(arm=arm, kind="lint", detail=str(exc),
                                 pass_name=exc.pass_name)
        return report
    except MeldValidationError as exc:
        report.failure = Failure(arm=arm, kind="validate", detail=str(exc),
                                 pass_name=exc.pass_name)
        return report
    except Exception as exc:
        report.failure = Failure(arm=arm, kind="crash",
                                 detail=f"{type(exc).__name__}: {exc}")
        return report
    report.verified_passes = hook.count
    if arm == "o3-cfm":
        cfm = next(p for pl in pipelines for p in pl.passes
                   if isinstance(p, CFMPass))
        report.melds = len(cfm.stats.melds) if cfm.stats else 0
        report.decisions = list(cfm.stats.decisions) if cfm.stats else []
        if lint:
            # The per-pass hook cannot see the decision log (it lives on
            # the pass object); audit meld legality once, post-compile.
            audit = repro.lint(function, rules=["meld-legality"],
                               decisions=report.decisions)
            if not audit.ok:
                report.failure = Failure(
                    arm=arm, kind="lint", pass_name="cfm",
                    detail="; ".join(d.render().split("\n")[0]
                                     for d in audit.errors))
                return report
    report.builder = builder
    return report


def arm_trace(spec: KernelSpec, arm: str,
              cfm_config: Optional[CFMConfig] = None,
              validate: bool = False) -> Dict[str, object]:
    """Re-compile one arm under a fresh tracer and return its artifacts.

    Used when recording a failing seed: the hot fuzz loop runs untraced,
    and only once a failure is being written to the corpus is the guilty
    arm recompiled to capture its pass-span trace and (for ``o3-cfm``)
    the melding decision log.  Compilation is deterministic, so the
    replayed trace describes exactly the compile that failed.
    """
    tracer = Tracer()
    with use_tracer(tracer):
        report = _compile_arm(arm, spec, cfm_config, validate=validate)
    return {
        "arm": arm,
        "events": list(tracer.events),
        "melding_decisions": [d.as_dict() for d in report.decisions],
    }


def _run_arm(report: ArmReport, spec: KernelSpec,
             input_seeds: Sequence[int],
             machine: Optional[MachineConfig] = None) -> None:
    """Launch one compiled arm over every input set, reusing one GPU."""
    builder = report.builder
    outputs: List[Dict[str, List[int]]] = []
    with GPU(builder.module, machine) as gpu:
        for input_seed in input_seeds:
            args = make_inputs(spec, input_seed)
            try:
                result = repro.launch(builder.module, spec.grid_dim,
                                      spec.block_dim, args, gpu=gpu)
            except Exception as exc:
                report.failure = Failure(
                    arm=report.arm, kind="crash", input_seed=input_seed,
                    detail=f"{type(exc).__name__}: {exc}")
                return
            outputs.append(result.outputs)
            gpu.reset()
    report.outputs = outputs


def _first_difference(reference: Dict[str, List[int]],
                      candidate: Dict[str, List[int]]) -> str:
    for name in sorted(reference):
        ref, got = reference[name], candidate.get(name)
        if got == ref:
            continue
        for i, (r, g) in enumerate(zip(ref, got or [])):
            if r != g:
                return f"buffer {name!r}[{i}]: expected {r}, got {g}"
        return f"buffer {name!r}: length {len(ref)} vs {len(got or [])}"
    return "outputs differ"


def run_oracle(spec: KernelSpec,
               arms: Sequence[str] = ALL_ARMS,
               input_seeds: Sequence[int] = (0, 1),
               cfm_config: Optional[CFMConfig] = None,
               machine: Optional[MachineConfig] = None,
               executor: Optional[str] = None,
               validate: bool = False) -> Verdict:
    """Compile and run ``spec`` under every arm; diff against ``noopt``.

    ``machine`` (a :class:`~repro.simt.MachineConfig`) describes the
    simulated GPU every arm launches on — executor, reconvergence
    policy, latency model.  The executor-differential tests run the same
    compiled arms under both executors; the policy-differential contract
    is that device memory is bit-identical across reconvergence policies
    too.  ``executor=`` is the deprecated pre-PR-7 spelling.

    ``validate=True`` adds the *static* sixth oracle: the ``o3-cfm`` arm
    compiles with symbolic translation validation enabled
    (``CFMConfig.validate``) and the
    :func:`~repro.analysis.validate.validate_melds_hook` pipeline hook,
    so any meld proven ``INEQUIVALENT`` fails the arm with kind
    ``"validate"`` — even when every run-and-diff input happens to mask
    the miscompile dynamically.
    """
    machine = resolve_machine(machine, executor=executor,
                              where="run_oracle")
    unknown = set(arms) - set(ALL_ARMS)
    if unknown:
        raise ValueError(f"unknown arms: {sorted(unknown)} "
                         f"(available: {list(ALL_ARMS)})")
    start = time.perf_counter()
    verdict = Verdict(spec=spec)
    arm_list = list(arms)
    if "noopt" not in arm_list:
        arm_list.insert(0, "noopt")

    for arm in arm_list:
        report = _compile_arm(arm, spec, cfm_config, validate=validate)
        if report.failure is None:
            _run_arm(report, spec, input_seeds, machine=machine)
        verdict.arms[arm] = report
        if report.failure is not None:
            verdict.failures.append(report.failure)

    reference = verdict.arms["noopt"]
    if reference.outputs is not None:
        for arm in arm_list:
            report = verdict.arms[arm]
            if arm == "noopt" or report.outputs is None:
                continue
            for input_seed, ref, got in zip(input_seeds, reference.outputs,
                                            report.outputs):
                if got != ref:
                    failure = Failure(
                        arm=arm, kind="mismatch", input_seed=input_seed,
                        detail=_first_difference(ref, got))
                    report.failure = report.failure or failure
                    verdict.failures.append(failure)

    verdict.seconds = time.perf_counter() - start
    return verdict
