"""``python -m repro.difftest`` — the differential fuzzing campaign.

Generates seeded random divergent kernels, runs each through the full
arm matrix (no-opt / -O3 / -O3+CFM / tail-merging / branch-fusion) with
per-pass IR verification, and diffs device memory bit-for-bit.  Failing
kernels are delta-debugged down to minimal DSL programs and written to
the corpus as JSON entries plus standalone repro scripts.

Typical invocations::

    python -m repro.difftest --seeds 200            # fixed-count sweep
    python -m repro.difftest --budget 60 --validate # time-boxed (CI), with
                                                    # meld translation
                                                    # validation as a sixth,
                                                    # static oracle
    python -m repro.difftest --seeds 50 --inject-bug swap-select

Exit status: 0 when every kernel agrees across every arm, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_registry,
    use as use_tracer,
    use_registry,
)
from repro.simt import RECONVERGENCE_POLICIES, MachineConfig

from .bugs import BUGS, inject
from .corpus import write_entry
from .generator import KernelSpec, generate_spec
from .oracle import ALL_ARMS, Verdict, arm_trace, run_oracle
from .shrink import shrink


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.difftest",
        description="Differential fuzzing of the CFM compiler pipelines.")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="number of generator seeds to test "
                             "(default: 100, or unlimited with --budget)")
    parser.add_argument("--budget", type=float, default=None, metavar="S",
                        help="stop after S seconds (checked between seeds)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first generator seed (default: 0)")
    parser.add_argument("--block-size", type=int, default=16,
                        help="threads per block for generated kernels")
    parser.add_argument("--grid", type=int, default=2,
                        help="blocks per launch for generated kernels")
    parser.add_argument("--inputs", type=int, default=2, metavar="K",
                        help="input sets per kernel (default: 2)")
    parser.add_argument("--arms", default=",".join(ALL_ARMS),
                        help=f"comma-separated arm subset "
                             f"(default: {','.join(ALL_ARMS)})")
    parser.add_argument("--corpus-dir", type=Path,
                        default=Path("difftest-corpus"),
                        help="where failing repros are written")
    parser.add_argument("--no-shrink", action="store_true",
                        help="record failures without minimizing them")
    parser.add_argument("--inject-bug", choices=sorted(BUGS), default=None,
                        help="sabotage a transform for mutation testing")
    parser.add_argument("--validate", action="store_true",
                        help="enable symbolic translation validation on the "
                             "o3-cfm arm: every meld is proven under both "
                             "divergence-mask cases and an INEQUIVALENT "
                             "verdict fails the arm (kind 'validate') even "
                             "when no input set witnesses it dynamically")
    parser.add_argument("--reconvergence", choices=RECONVERGENCE_POLICIES,
                        default="ipdom",
                        help="warp reconvergence policy the oracle arms run "
                             "under (default: ipdom); device memory must "
                             "agree bit-for-bit whichever policy is chosen")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="run the whole campaign under a repro.obs "
                             "tracer and write Chrome trace JSON here "
                             "(loads in Perfetto; slows the fuzz loop)")
    parser.add_argument("--metrics", type=Path, default=None, metavar="FILE",
                        help="run under a repro.obs metrics registry and "
                             "write the campaign's aggregate metrics here "
                             "as Prometheus text exposition")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the final summary")
    args = parser.parse_args(argv)
    if args.seeds is None and args.budget is None:
        args.seeds = 100
    return args


def _progress(quiet: bool, text: str) -> None:
    if not quiet:
        print(text, flush=True)


def run_campaign(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    arms = tuple(a.strip() for a in args.arms.split(",") if a.strip())
    input_seeds = tuple(range(args.inputs))
    deadline = (time.perf_counter() + args.budget
                if args.budget is not None else None)

    bug_scope = inject(args.inject_bug) if args.inject_bug else None
    if bug_scope is not None:
        bug_scope.__enter__()
    tracer = Tracer() if args.trace is not None else None
    registry = MetricsRegistry() if args.metrics is not None else None
    try:
        if tracer is not None and registry is not None:
            with use_tracer(tracer), use_registry(registry):
                return _campaign_body(args, arms, input_seeds, deadline)
        if tracer is not None:
            with use_tracer(tracer):
                return _campaign_body(args, arms, input_seeds, deadline)
        if registry is not None:
            with use_registry(registry):
                return _campaign_body(args, arms, input_seeds, deadline)
        return _campaign_body(args, arms, input_seeds, deadline)
    finally:
        if tracer is not None:
            tracer.write(str(args.trace))
            print(f"wrote {args.trace} ({len(tracer.events)} trace events)")
        if registry is not None:
            registry.write_prom(str(args.metrics))
            print(f"wrote {args.metrics}")
        if bug_scope is not None:
            bug_scope.__exit__(None, None, None)


def _campaign_body(args: argparse.Namespace, arms: Sequence[str],
                   input_seeds: Sequence[int],
                   deadline: Optional[float]) -> int:
    tested = 0
    failing: List[Verdict] = []
    total_melds = 0
    verified_passes = 0
    machine = MachineConfig(reconvergence=args.reconvergence)
    start = time.perf_counter()

    seed = args.base_seed
    while True:
        if args.seeds is not None and tested >= args.seeds:
            break
        if deadline is not None and time.perf_counter() >= deadline:
            break
        spec = generate_spec(seed, block_dim=args.block_size,
                             grid_dim=args.grid)
        verdict = run_oracle(spec, arms=arms, input_seeds=input_seeds,
                             machine=machine, validate=args.validate)
        tested += 1
        total_melds += sum(r.melds for r in verdict.arms.values())
        verified_passes += sum(r.verified_passes
                               for r in verdict.arms.values())
        if not verdict.ok:
            _progress(args.quiet,
                      f"seed {seed}: FAIL — {verdict.failures[0]}")
            _record_failure(args, spec, verdict, arms, input_seeds, machine)
            failing.append(verdict)
        elif tested % 25 == 0:
            _progress(args.quiet,
                      f"  ... {tested} kernels ok "
                      f"({time.perf_counter() - start:.1f}s)")
        seed += 1

    elapsed = time.perf_counter() - start
    registry = current_registry()
    if registry.enabled:
        registry.counter("repro_difftest_seeds_total",
                         "Generator seeds run through the oracle").inc(tested)
        registry.counter("repro_difftest_melds_total",
                         "Melds applied across all oracle arms"
                         ).inc(total_melds)
        failures_by_arm = registry.counter(
            "repro_difftest_failures_total",
            "Oracle failures by the arm that disagreed")
        for verdict in failing:
            for failure in verdict.failures:
                failures_by_arm.labels(arm=failure.arm).inc()
        if elapsed > 0:
            registry.gauge("repro_difftest_seeds_per_second",
                           "Campaign fuzzing throughput"
                           ).set(tested / elapsed)
    mismatches = sum(v.mismatches for v in failing)
    verifier_failures = sum(v.verifier_failures for v in failing)
    lint_failures = sum(v.lint_failures for v in failing)
    validate_failures = sum(v.validate_failures for v in failing)
    crashes = sum(1 for v in failing
                  for f in v.failures if f.kind == "crash")
    print(f"difftest: {tested} kernels x {len(arms)} arms in {elapsed:.1f}s "
          f"({verified_passes} per-pass verifications, "
          f"{total_melds} melds)")
    print(f"  output mismatches:  {mismatches}")
    print(f"  verifier failures:  {verifier_failures}")
    print(f"  lint failures:      {lint_failures}")
    if args.validate:
        print(f"  validate failures:  {validate_failures}")
    print(f"  crashes:            {crashes}")
    if failing:
        print(f"  repros written to:  {args.corpus_dir}/")
        return 1
    print("  all arms agree bit-for-bit")
    return 0


def _record_failure(args: argparse.Namespace, spec: KernelSpec,
                    verdict: Verdict, arms: Sequence[str],
                    input_seeds: Sequence[int],
                    machine: Optional[MachineConfig] = None) -> None:
    original_statements = spec.statement_count()
    final_spec, final_verdict = spec, verdict

    if not args.no_shrink:
        def is_failing(candidate: KernelSpec) -> bool:
            return not run_oracle(candidate, arms=arms,
                                  input_seeds=input_seeds,
                                  machine=machine,
                                  validate=args.validate).ok

        result = shrink(spec, is_failing)
        final_spec = result.spec
        final_verdict = run_oracle(final_spec, arms=arms,
                                   input_seeds=input_seeds,
                                   machine=machine,
                                   validate=args.validate)
        if final_verdict.ok:  # paranoia: never record a passing "repro"
            final_spec, final_verdict = spec, verdict
        else:
            _progress(args.quiet,
                      f"  shrunk {result.original_statements} -> "
                      f"{result.statements} statements "
                      f"({result.attempts} attempts)")

    # Recompile each failing arm under a fresh tracer so the corpus
    # entry carries its pass-span trace and melding decision log.
    failing_arms = sorted({f.arm for f in final_verdict.failures})
    traces = [arm_trace(final_spec, arm, validate=args.validate)
              for arm in failing_arms]

    path = write_entry(args.corpus_dir, final_spec, final_verdict,
                       original_statements=original_statements,
                       input_seeds=input_seeds,
                       injected_bug=args.inject_bug,
                       traces=traces,
                       validate=args.validate)
    _progress(args.quiet, f"  wrote {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_campaign(argv)


if __name__ == "__main__":
    sys.exit(main())
