"""Differential correctness harness: fuzz, diff, shrink, replay.

The harness closes the loop the sweep harness (:mod:`repro.evaluation`)
leaves open: the evaluation suite shows CFM is *profitable* on a fixed
kernel set; this package shows the compiler is *correct* on an unbounded
one.  Four stages, each usable on its own:

- :mod:`~repro.difftest.generator` — seeded random divergent kernels
  over the builder DSL (:func:`generate_spec` / :func:`build_kernel`);
- :mod:`~repro.difftest.oracle` — the five-arm compile+run matrix with
  per-pass IR verification (:func:`run_oracle`);
- :mod:`~repro.difftest.shrink` — DSL-statement-level delta debugging
  of failures (:func:`shrink`);
- :mod:`~repro.difftest.corpus` — persistent repro artifacts
  (:func:`write_entry` / :func:`replay`).

:mod:`~repro.difftest.bugs` holds named injectable compiler bugs for
mutation-testing the harness itself, and :mod:`~repro.difftest.cli`
wires everything into ``python -m repro.difftest --seeds N --budget S``.

The whole package consumes the compiler exclusively through the public
:mod:`repro` facade (``repro.compile`` / ``repro.launch`` semantics via
the shared pass and machine APIs) — it is the facade's first
out-of-tree-style client.
"""

from .bugs import BUGS, inject
from .corpus import (
    CorpusEntry,
    list_entries,
    load_entry,
    replay,
    write_entry,
)
from .generator import (
    KernelSpec,
    build_kernel,
    count_statements,
    generate_spec,
    make_inputs,
)
from .oracle import (
    ALL_ARMS,
    MELDING_ARMS,
    ArmReport,
    Failure,
    PassVerificationError,
    Verdict,
    arm_trace,
    run_oracle,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "ALL_ARMS",
    "ArmReport",
    "BUGS",
    "CorpusEntry",
    "Failure",
    "KernelSpec",
    "MELDING_ARMS",
    "PassVerificationError",
    "ShrinkResult",
    "Verdict",
    "arm_trace",
    "build_kernel",
    "count_statements",
    "generate_spec",
    "inject",
    "list_entries",
    "load_entry",
    "make_inputs",
    "replay",
    "run_oracle",
    "shrink",
    "write_entry",
]
