"""GPU divergence analysis (data dependence + sync dependence).

Follows the structure of LLVM's divergence analysis that the paper relies
on (§II-B): a value is *divergent* when threads of a warp may observe
different values for it.  Divergence seeds are the thread-id intrinsics;
taint propagates forward through

* **data dependence** — any user of a divergent value is divergent
  (loads become divergent when their address is divergent), and
* **sync dependence** — φ nodes at the join points of a divergent branch
  are divergent even when all incoming values are uniform, because *which*
  incoming value arrives depends on the thread.

Join points are over-approximated: for a divergent branch in ``B`` with
successors ``s1, s2``, every multi-predecessor block reachable from both
successors is treated as a join.  *Temporal* divergence is handled
separately: when a loop has a divergent exiting branch, threads leave the
loop at different iterations, so every value defined inside the loop and
used outside it is divergent — even though it may be uniform across the
threads still active inside the loop.  This matches the conservative
built-in LLVM analysis the paper uses (§II-B) rather than Rosemann et
al.'s precise one.

The analysis result also classifies *branches*: a branch is divergent when
its condition is (Definition in §II-B); CFM only melds regions rooted at a
divergent branch.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    Instruction,
    IntrinsicName,
    Load,
    Phi,
    Store,
)
from repro.ir.values import Argument, Value

from .cfg import reachable_from
from .dominators import compute_postdominator_tree, immediate_postdominator


class DivergenceInfo:
    """Result object: query divergence of values and branches."""

    def __init__(self, function: Function, divergent_values: Set[Value],
                 divergent_blocks: Set[BasicBlock]) -> None:
        self.function = function
        self._divergent = divergent_values
        self._divergent_branch_blocks = divergent_blocks

    def is_divergent(self, value: Value) -> bool:
        return value in self._divergent

    def is_uniform(self, value: Value) -> bool:
        return value not in self._divergent

    def has_divergent_branch(self, block: BasicBlock) -> bool:
        """True if ``block`` terminates in a divergent conditional branch."""
        return block in self._divergent_branch_blocks

    @property
    def divergent_branch_blocks(self) -> Set[BasicBlock]:
        return set(self._divergent_branch_blocks)

    @property
    def divergent_values(self) -> Set[Value]:
        return set(self._divergent)


def compute_divergence(
    function: Function,
    divergent_args: Optional[Iterable[Argument]] = None,
) -> DivergenceInfo:
    """Run the fixpoint divergence analysis.

    ``divergent_args`` lets callers mark arguments as divergence sources
    (kernel arguments are uniform by default, matching GPU semantics).
    """
    divergent: Set[Value] = set(divergent_args or [])
    divergent_branch_blocks: Set[BasicBlock] = set()
    # Blocks whose join sets were already applied, so the worklist pass
    # does not recompute reachability every round.
    processed_branches: Set[BasicBlock] = set()

    # Seed: thread-id intrinsics.
    for instr in function.instructions():
        if isinstance(instr, Call) and instr.callee in IntrinsicName.THREAD_ID_SOURCES:
            divergent.add(instr)

    # The CFG is immutable during the fixpoint; share one PDT across
    # every branch's join computation.
    pdt = compute_postdominator_tree(function)

    changed = True
    while changed:
        changed = False
        # Data-dependence propagation.
        for instr in function.instructions():
            if instr in divergent:
                continue
            if instr.type.is_void:
                continue
            if _has_divergent_operand(instr, divergent):
                divergent.add(instr)
                changed = True
        # Branch classification + sync dependence.
        for block in function.blocks:
            term = block.terminator
            if not isinstance(term, Branch) or not term.is_conditional:
                continue
            if term.condition not in divergent:
                continue
            if block not in divergent_branch_blocks:
                divergent_branch_blocks.add(block)
                changed = True
            if block in processed_branches:
                continue
            processed_branches.add(block)
            for join in _join_blocks(block, pdt):
                for phi in join.phis:
                    if phi not in divergent:
                        divergent.add(phi)
                        changed = True
        # Temporal divergence: loop live-outs of divergently-exiting loops.
        if _mark_temporal_divergence(function, divergent, divergent_branch_blocks):
            changed = True

    return DivergenceInfo(function, divergent, divergent_branch_blocks)


# ---------------------------------------------------------------------------
# Per-function memoization.
#
# The fixpoint is the most expensive analysis in the repo and at least
# three consumers want the same answer for the same IR: the CFM pass, the
# lint rules, and facade callers (``repro.analyze``).  The cache is keyed
# weakly on the Function (no lifetime coupling) and guarded by a cheap
# structural fingerprint so an *unchanged* function hits while any pass
# that adds/removes blocks or instructions naturally misses.  The
# fingerprint cannot see in-place operand rewrites, so mutating callers
# (PassPipeline between passes, CFM after each meld) must also call
# :func:`invalidate_divergence` explicitly.

_divergence_cache: "weakref.WeakKeyDictionary[Function, Tuple[tuple, DivergenceInfo]]" = (
    weakref.WeakKeyDictionary()
)


def _fingerprint(function: Function) -> tuple:
    return tuple((id(block), len(block)) for block in function.blocks)


def cached_divergence(function: Function) -> DivergenceInfo:
    """Memoized :func:`compute_divergence` (default ``divergent_args``).

    Consumers that share the default-seeded analysis (lint, CFM, the
    facade's ``repro.analyze``) go through here so one compile runs the
    fixpoint once, not once per consumer.
    """
    token = _fingerprint(function)
    hit = _divergence_cache.get(function)
    if hit is not None and hit[0] == token:
        return hit[1]
    info = compute_divergence(function)
    _divergence_cache[function] = (token, info)
    return info


def invalidate_divergence(function: Function) -> None:
    """Drop the cached analysis for ``function`` (call after mutating it)."""
    _divergence_cache.pop(function, None)


def _mark_temporal_divergence(function: Function, divergent: Set[Value],
                              divergent_branch_blocks: Set[BasicBlock]) -> bool:
    from .loops import compute_loop_info  # local import: loops -> dominators

    changed = False
    loop_info = compute_loop_info(function)
    for loop in loop_info:
        if not any(b in divergent_branch_blocks for b in loop.exiting_blocks):
            continue
        for block in loop.blocks:
            for instr in block:
                if instr in divergent or instr.type.is_void:
                    continue
                for user in instr.users:
                    if isinstance(user, Instruction) and user.parent not in loop.blocks:
                        divergent.add(instr)
                        changed = True
                        break
    return changed


def _has_divergent_operand(instr: Instruction, divergent: Set[Value]) -> bool:
    if isinstance(instr, Load):
        return instr.pointer in divergent
    return any(op in divergent for op in instr.operands)


def _join_blocks(branch_block: BasicBlock,
                 pdt=None) -> Set[BasicBlock]:
    """Join points of the branch in ``branch_block``.

    Joins are multi-predecessor blocks reachable from two successors on
    paths that do not pass *through* the branch's immediate
    post-dominator, plus the IPDOM itself when it merges control flow.
    The IPDOM cut mirrors the SIMT machine exactly: the simulator's warp
    scheduler reconverges split lanes at the IPDOM, so beyond it the
    "which successor was taken" token is dead and cannot make a φ
    divergent.  In particular a *uniform* loop around the branch no
    longer sees its header φs tainted through the backedge (the old
    over-approximation); divergent loop *exits* are still handled by
    :func:`_mark_temporal_divergence`.
    """
    succs = branch_block.succs
    if len(succs) < 2:
        return set()
    if pdt is None:
        pdt = compute_postdominator_tree(branch_block.parent)
    rpc = immediate_postdominator(pdt, branch_block)
    reach = [reachable_from(s, stop=rpc) | {s} for s in succs]
    joined: Set[BasicBlock] = set()
    for i in range(len(reach)):
        for j in range(i + 1, len(reach)):
            for block in reach[i] & reach[j]:
                if len(block.preds) >= 2:
                    joined.add(block)
    if rpc is not None and len(rpc.preds) >= 2:
        joined.add(rpc)
    return joined
