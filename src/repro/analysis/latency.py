"""Static instruction latency model.

One latency table serves two customers, exactly as in the paper:

* CFM's melding-profitability metrics ``FP_B``/``FP_S``/``FP_I`` (§IV-C)
  use ``lat(i)`` and the per-opcode weight ``w_i``;
* the SIMT simulator charges the same latencies per issued instruction,
  so the profitability heuristic and the measured cycles agree about what
  is expensive.

Values are loosely modelled on the AMD GCN/Vega pipeline the paper used:
most VALU operations take 4 cycles per wavefront, LDS (shared memory)
operations are several times more expensive than ALU work but far cheaper
than global (vector) memory — the paper's §VI-D observation that melding
shared-memory instructions pays off the most depends on this ordering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

from repro.ir.types import AddressSpace
from repro.ir.instructions import (
    Call,
    Instruction,
    IntrinsicName,
    Load,
    Opcode,
    Phi,
    Store,
)


_DEFAULT_OPCODE_LATENCY: Dict[str, int] = {
    Opcode.ADD: 4, Opcode.SUB: 4, Opcode.AND: 4, Opcode.OR: 4, Opcode.XOR: 4,
    Opcode.SHL: 4, Opcode.LSHR: 4, Opcode.ASHR: 4,
    Opcode.MUL: 8,
    Opcode.SDIV: 40, Opcode.UDIV: 40, Opcode.SREM: 40, Opcode.UREM: 40,
    Opcode.FADD: 4, Opcode.FSUB: 4, Opcode.FMUL: 4, Opcode.FNEG: 4,
    Opcode.FDIV: 32,
    Opcode.ICMP: 4, Opcode.FCMP: 4,
    Opcode.SELECT: 4,
    Opcode.GEP: 4,
    Opcode.ZEXT: 4, Opcode.SEXT: 4, Opcode.TRUNC: 4, Opcode.SITOFP: 4,
    Opcode.FPTOSI: 4, Opcode.BITCAST: 0,
    Opcode.BR: 16,
    Opcode.RET: 4,
    Opcode.PHI: 0,   # resolved on edges; no issue slot
    Opcode.CALL: 4,  # pure intrinsics (tid etc.); barrier handled separately
}

_DEFAULT_MEMORY_LATENCY: Dict[int, int] = {
    AddressSpace.SHARED: 32,
    AddressSpace.GLOBAL: 300,
    AddressSpace.FLAT: 320,
}


@dataclass
class LatencyModel:
    """``lat(i)`` of §IV-C; customizable for ablations."""

    opcode_latency: Dict[str, int] = field(
        default_factory=lambda: dict(_DEFAULT_OPCODE_LATENCY))
    memory_latency: Dict[int, int] = field(
        default_factory=lambda: dict(_DEFAULT_MEMORY_LATENCY))
    barrier_latency: int = 16

    def latency(self, instr: Instruction) -> int:
        """Static latency of one instruction."""
        if isinstance(instr, (Load, Store)):
            return self.memory_latency[instr.address_space]
        if isinstance(instr, Call):
            if instr.is_barrier:
                return self.barrier_latency
            return self.opcode_latency[Opcode.CALL]
        return self.opcode_latency[instr.opcode]

    def block_latency(self, block) -> int:
        """``lat(b)``: the sum of instruction latencies in a basic block."""
        return sum(self.latency(i) for i in block)

    @property
    def select_latency(self) -> int:
        """``l_sel`` in the ``FP_I`` formula."""
        return self.opcode_latency[Opcode.SELECT]

    @property
    def branch_latency(self) -> int:
        return self.opcode_latency[Opcode.BR]


DEFAULT_LATENCY_MODEL = LatencyModel()


def latency_token(model: LatencyModel) -> tuple:
    """Hashable identity of a latency model's observable contents.

    Feeds :meth:`repro.simt.MachineConfig.token` (and through it every
    warp-level program cache and the persistent compile cache), so two
    models with equal tables share cache entries regardless of object
    identity.
    """
    return (tuple(sorted(model.opcode_latency.items())),
            tuple(sorted(model.memory_latency.items())),
            model.barrier_latency)


def latency_token_key(model: LatencyModel) -> str:
    """Stable text form of :func:`latency_token`, for digest-keyed caches."""
    return json.dumps(latency_token(model), separators=(",", ":"))
