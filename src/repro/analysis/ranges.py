"""Interval value-range analysis for integer SSA values.

A sparse dataflow client of :class:`repro.analysis.dataflow.SparseSolver`:
every integer-typed value gets a conservative interval ``[lo, hi]``
(``None`` bounds mean unbounded within the type), refined along def-use
edges to a fixpoint with widening so loop-carried counters terminate.

GPU thread-geometry intrinsics seed the lattice — ``tid.x``/``ctaid.x``
are ``[0, +max]`` and ``ntid.x``/``nctaid.x`` are ``[1, +max]`` — which
is what lets the lint layer prove facts like "``tid & (N-1)`` indexes a
shared array of N elements in bounds" or "this branch condition is
statically decided" without knowing the launch dimensions.

Soundness contract: intervals are over the *stored* two's-complement
value.  Any transfer whose mathematical result could leave the type's
signed range collapses to the full type range instead of pretending
wrap-around cannot happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Call,
    Cast,
    ICmp,
    ICmpPredicate,
    Instruction,
    IntrinsicName,
    Opcode,
    Phi,
    Select,
)
from repro.ir.types import IntType
from repro.ir.values import Argument, Constant, Undef, Value

from .dataflow import SparseSolver


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds are unbounded.

    ``EMPTY`` (the lattice bottom, "no value reaches here yet") is the
    dedicated empty interval — check :attr:`empty` before reading the
    bounds of an arbitrary interval.
    """

    lo: Optional[int] = None
    hi: Optional[int] = None
    empty: bool = False

    # -- constructors -------------------------------------------------------

    @staticmethod
    def exact(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def of_type(type_) -> "Interval":
        """The full stored range of an integer type (TOP for that type)."""
        if isinstance(type_, IntType):
            return Interval(type_.min_value, type_.max_value)
        return TOP

    # -- predicates ---------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.empty and self.lo is not None and self.lo == self.hi

    @property
    def constant_value(self) -> Optional[int]:
        return self.lo if self.is_constant else None

    def contains(self, value: int) -> bool:
        if self.empty:
            return False
        return ((self.lo is None or self.lo <= value)
                and (self.hi is None or value <= self.hi))

    def intersects(self, lo: int, hi: int) -> bool:
        """Does this interval overlap the closed range ``[lo, hi]``?"""
        if self.empty or hi < lo:
            return False
        return ((self.hi is None or self.hi >= lo)
                and (self.lo is None or self.lo <= hi))

    def nonnegative(self) -> bool:
        return not self.empty and self.lo is not None and self.lo >= 0

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, previous: "Interval") -> "Interval":
        """Blow any still-moving bound to unbounded (applied by the
        solver only after repeated recomputation)."""
        if previous.empty or self.empty:
            return self
        lo = self.lo
        if lo is not None and (previous.lo is None or lo < previous.lo):
            lo = None
        hi = self.hi
        if hi is not None and (previous.hi is None or hi > previous.hi):
            hi = None
        return Interval(lo, hi)

    def clamp(self, type_) -> "Interval":
        """Collapse to the full type range unless provably wrap-free."""
        if self.empty or not isinstance(type_, IntType):
            return self
        full = Interval.of_type(type_)
        if self.lo is None or self.hi is None:
            return full
        if self.lo < full.lo or self.hi > full.hi:
            return full
        return self

    def __repr__(self) -> str:
        if self.empty:
            return "[empty]"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)
EMPTY = Interval(0, 0, empty=True)

#: interval seeds for the thread-geometry intrinsics (ISSUE: the launch
#: dimensions are unknown at compile time, but never negative/zero)
_INTRINSIC_SEEDS = {
    IntrinsicName.TID_X: 0,
    IntrinsicName.CTAID_X: 0,
    IntrinsicName.NTID_X: 1,
    IntrinsicName.NCTAID_X: 1,
}


def _leaf_interval(value: Value) -> Optional[Interval]:
    """Interval of a non-instruction value, or None if not a leaf."""
    if isinstance(value, Constant):
        if isinstance(value.type, IntType):
            return Interval.exact(value.value)
        return TOP
    if isinstance(value, (Argument, Undef)):
        return Interval.of_type(value.type)
    return None


def _both(a: Interval, b: Interval) -> bool:
    return not a.empty and not b.empty


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _sub(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.hi is None else a.lo - b.hi
    hi = None if a.hi is None or b.lo is None else a.hi - b.lo
    return Interval(lo, hi)


def _mul(a: Interval, b: Interval) -> Interval:
    bounds = (a.lo, a.hi, b.lo, b.hi)
    if None not in bounds:
        products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return Interval(min(products), max(products))
    if a.nonnegative() and b.nonnegative():
        return Interval(a.lo * b.lo, None)
    return TOP


def _and(a: Interval, b: Interval) -> Interval:
    # x & c with c >= 0 is in [0, c] whatever x is (two's complement).
    caps = [iv.constant_value for iv in (a, b)
            if iv.is_constant and iv.constant_value >= 0]
    if caps:
        return Interval(0, min(caps))
    if a.nonnegative() and b.nonnegative():
        his = [iv.hi for iv in (a, b) if iv.hi is not None]
        return Interval(0, min(his) if his else None)
    return TOP


def _or_xor(a: Interval, b: Interval) -> Interval:
    if a.nonnegative() and b.nonnegative():
        if a.hi is not None and b.hi is not None:
            bits = max(a.hi, b.hi).bit_length()
            return Interval(0, (1 << bits) - 1)
        return Interval(0, None)
    return TOP


def _urem(a: Interval, b: Interval) -> Interval:
    if b.lo is not None and b.lo > 0 and b.hi is not None:
        hi = b.hi - 1
        if a.nonnegative() and a.hi is not None:
            hi = min(hi, a.hi)
        return Interval(0, hi)
    if a.nonnegative():
        return Interval(0, a.hi)
    return TOP


def _srem(a: Interval, b: Interval) -> Interval:
    c = b.constant_value
    if c is not None and c != 0:
        bound = abs(c) - 1
        if a.nonnegative():
            return Interval(0, bound)
        return Interval(-bound, bound)
    return TOP


def _div(a: Interval, b: Interval) -> Interval:
    # Non-negative dividend, positive constant divisor: truncating and
    # floor division agree, so Python's // is exact for both udiv/sdiv.
    c = b.constant_value
    if c is not None and c > 0 and a.nonnegative():
        return Interval(a.lo // c, None if a.hi is None else a.hi // c)
    return TOP


def _shift(opcode: str, a: Interval, b: Interval) -> Interval:
    c = b.constant_value
    if c is None or c < 0 or not a.nonnegative():
        return TOP
    if opcode == Opcode.SHL:
        return Interval(a.lo << c, None if a.hi is None else a.hi << c)
    # lshr and ashr agree on non-negative inputs.
    return Interval(a.lo >> c, None if a.hi is None else a.hi >> c)


_BINARY = {
    Opcode.ADD: _add,
    Opcode.SUB: _sub,
    Opcode.MUL: _mul,
    Opcode.AND: _and,
    Opcode.OR: _or_xor,
    Opcode.XOR: _or_xor,
    Opcode.UREM: _urem,
    Opcode.SREM: _srem,
    Opcode.UDIV: _div,
    Opcode.SDIV: _div,
}


def _icmp(predicate: str, a: Interval, b: Interval) -> Interval:
    """Decide a comparison from the operand intervals when possible.

    Unsigned predicates are only decided for provably non-negative
    operands (where signed and unsigned orders agree)."""
    if a.empty or b.empty:
        return Interval(0, 1)
    signed_ok = predicate in (ICmpPredicate.EQ, ICmpPredicate.NE,
                              ICmpPredicate.SLT, ICmpPredicate.SLE,
                              ICmpPredicate.SGT, ICmpPredicate.SGE)
    unsigned = predicate in (ICmpPredicate.ULT, ICmpPredicate.ULE,
                             ICmpPredicate.UGT, ICmpPredicate.UGE)
    if unsigned and not (a.nonnegative() and b.nonnegative()):
        return Interval(0, 1)
    if not (signed_ok or unsigned):
        return Interval(0, 1)
    canonical = {
        ICmpPredicate.ULT: ICmpPredicate.SLT,
        ICmpPredicate.ULE: ICmpPredicate.SLE,
        ICmpPredicate.UGT: ICmpPredicate.SGT,
        ICmpPredicate.UGE: ICmpPredicate.SGE,
    }.get(predicate, predicate)

    def lt(x: Interval, y: Interval, or_equal: bool) -> Optional[bool]:
        # True iff x <(=) y for every pair; False iff never; None unknown.
        if x.hi is not None and y.lo is not None and (
                x.hi < y.lo or (or_equal and x.hi == y.lo)):
            return True
        if x.lo is not None and y.hi is not None and (
                x.lo > y.hi or (not or_equal and x.lo == y.hi)):
            return False
        return None

    verdict: Optional[bool] = None
    if canonical == ICmpPredicate.EQ:
        if a.is_constant and b.is_constant:
            verdict = a.constant_value == b.constant_value
        elif (a.hi is not None and b.lo is not None and a.hi < b.lo) or \
                (b.hi is not None and a.lo is not None and b.hi < a.lo):
            verdict = False
    elif canonical == ICmpPredicate.NE:
        inner = _icmp(ICmpPredicate.EQ, a, b)
        if inner.is_constant:
            verdict = not inner.constant_value
    elif canonical == ICmpPredicate.SLT:
        verdict = lt(a, b, or_equal=False)
    elif canonical == ICmpPredicate.SLE:
        verdict = lt(a, b, or_equal=True)
    elif canonical == ICmpPredicate.SGT:
        verdict = lt(b, a, or_equal=False)
    elif canonical == ICmpPredicate.SGE:
        verdict = lt(b, a, or_equal=True)
    if verdict is None:
        return Interval(0, 1)
    return Interval.exact(1 if verdict else 0)


def _transfer(instr: Instruction,
              fact_of: Callable[[Value], Interval]) -> Interval:
    def read(value: Value) -> Interval:
        leaf = _leaf_interval(value)
        return leaf if leaf is not None else fact_of(value)

    type_ = instr.type
    if isinstance(instr, BinaryOp) and instr.opcode in Opcode.INT_BINARY:
        a, b = read(instr.lhs), read(instr.rhs)
        if not _both(a, b):
            return EMPTY
        if instr.opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            return _shift(instr.opcode, a, b).clamp(type_)
        fn = _BINARY.get(instr.opcode)
        return fn(a, b).clamp(type_) if fn else Interval.of_type(type_)
    if isinstance(instr, ICmp):
        a, b = read(instr.lhs), read(instr.rhs)
        if not _both(a, b):
            return EMPTY
        return _icmp(instr.predicate, a, b)
    if isinstance(instr, Select):
        cond = read(instr.condition)
        t, f = read(instr.true_value), read(instr.false_value)
        if cond.is_constant:
            return t if cond.constant_value else f
        return t.join(f)
    if isinstance(instr, Phi):
        result = EMPTY
        for value, _ in instr.incoming:
            result = result.join(read(value))
        return result
    if isinstance(instr, Cast):
        inner = read(instr.value)
        if inner.empty:
            return EMPTY
        if instr.opcode in (Opcode.ZEXT, Opcode.SEXT):
            if instr.opcode == Opcode.ZEXT and not inner.nonnegative():
                # zext reinterprets negative values as large positives.
                return Interval.of_type(type_)
            return inner.clamp(type_)
        if instr.opcode == Opcode.TRUNC:
            full = Interval.of_type(type_)
            if inner.lo is not None and inner.hi is not None \
                    and inner.lo >= full.lo and inner.hi <= full.hi:
                return inner
            return full
        return Interval.of_type(type_)
    if isinstance(instr, Call):
        seed = _INTRINSIC_SEEDS.get(instr.callee)
        if seed is not None:
            return Interval(seed, Interval.of_type(type_).hi)
        if instr.callee in (IntrinsicName.MIN, IntrinsicName.MAX) \
                and len(instr.args) == 2:
            a, b = read(instr.args[0]), read(instr.args[1])
            if not _both(a, b):
                return EMPTY
            if instr.callee == IntrinsicName.MIN:
                los = (a.lo, b.lo)
                lo = None if None in los else min(los)
                his = [h for h in (a.hi, b.hi) if h is not None]
                return Interval(lo, min(his) if his else None)
            los = [l for l in (a.lo, b.lo) if l is not None]
            his = (a.hi, b.hi)
            return Interval(max(los) if los else None,
                            None if None in his else max(his))
        return Interval.of_type(type_)
    # Loads, GEPs, float ops: no interval facts beyond the type range.
    return Interval.of_type(type_)


class ValueRanges:
    """Query surface over the solved interval facts of one function."""

    def __init__(self, solver: SparseSolver) -> None:
        self._solver = solver

    def range_of(self, value: Value) -> Interval:
        """The interval of any value (instruction, constant, argument).

        :data:`EMPTY` means no executable fact reached the value — it
        sits in dataflow-dead SSA (e.g. a φ all of whose inputs are
        themselves empty); callers should treat it as "no claim".
        """
        leaf = _leaf_interval(value)
        if leaf is not None:
            return leaf
        fact = self._solver.fact_of(value)
        return fact if isinstance(fact, Interval) else EMPTY

    def decided_condition(self, value: Value) -> Optional[bool]:
        """True/False when an ``i1`` value is statically decided."""
        if not value.type.is_bool:
            return None
        interval = self.range_of(value)
        if interval.is_constant:
            return bool(interval.constant_value)
        return None


def compute_ranges(function: Function) -> ValueRanges:
    """Solve the interval lattice over ``function`` (to a fixpoint,
    with widening on loop-carried values)."""
    solver = SparseSolver(
        bottom=EMPTY,
        join=lambda a, b: a.join(b),
        transfer=_transfer,
        widen=lambda old, new: new.widen(old),
    )
    solver.solve(function)
    return ValueRanges(solver)
