"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

CFM leans on dominance everywhere: meldable-region detection needs the
immediate post-dominator (Definition 5), SESE subgraph ordering uses the
post-dominance relation (§IV-C), and the verifier checks that definitions
dominate uses.

Post-dominance is computed on the reversed CFG.  Functions whose exit is
not unique get a *virtual exit* that post-dominates every ``ret`` block
(and every infinite loop's blocks are simply absent from the postdom tree,
which the callers treat as "not post-dominated by anything").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi, Ret
from .cfg import reverse_postorder


class DominatorTree:
    """Dominator (or post-dominator) tree over a function's CFG.

    ``idom`` maps each block to its immediate dominator; the root maps to
    itself.  ``None``-rooted queries on unreachable blocks raise ``KeyError``.
    """

    def __init__(self, idom: Dict[BasicBlock, BasicBlock], root: BasicBlock,
                 is_post: bool = False) -> None:
        self._idom = idom
        self.root = root
        self.is_post = is_post
        self._children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in idom}
        for block, parent in idom.items():
            if block is not parent:
                self._children[parent].append(block)
        self._depth: Dict[BasicBlock, int] = {}
        self._compute_depths()

    def _compute_depths(self) -> None:
        self._depth[self.root] = 0
        work = [self.root]
        while work:
            node = work.pop()
            for child in self._children[node]:
                self._depth[child] = self._depth[node] + 1
                work.append(child)

    # ---- queries ---------------------------------------------------------

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator, or ``None`` for the root."""
        parent = self._idom[block]
        return None if parent is block else parent

    def contains(self, block: BasicBlock) -> bool:
        return block in self._idom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexively)."""
        if a not in self._idom or b not in self._idom:
            return False
        while self._depth[b] > self._depth[a]:
            b = self._idom[b]
        return a is b

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children.get(block, []))

    def depth(self, block: BasicBlock) -> int:
        return self._depth[block]

    def blocks(self) -> Iterable[BasicBlock]:
        return self._idom.keys()

    def nearest_common_dominator(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while self._depth[a] > self._depth[b]:
            a = self._idom[a]
        while self._depth[b] > self._depth[a]:
            b = self._idom[b]
        while a is not b:
            a = self._idom[a]
            b = self._idom[b]
        return a

    def preorder(self) -> List[BasicBlock]:
        """Tree pre-order; dominators appear before dominated blocks."""
        order: List[BasicBlock] = []
        work = [self.root]
        while work:
            node = work.pop()
            order.append(node)
            work.extend(reversed(self._children[node]))
        return order

    # ---- instruction-level dominance ------------------------------------

    def instruction_dominates(self, def_instr: Instruction, use_instr: Instruction,
                              use_index: Optional[int] = None) -> bool:
        """True if ``def_instr`` dominates the *use site* in ``use_instr``.

        For φ users the use site is the end of the corresponding incoming
        block (``use_index`` selects which incoming slot).
        """
        def_block = def_instr.parent
        use_block = use_instr.parent
        if isinstance(use_instr, Phi) and use_index is not None:
            incoming_block = use_instr.incoming_blocks[use_index]
            return self.dominates(def_block, incoming_block)
        if def_block is use_block:
            instrs = def_block.instructions
            return instrs.index(def_instr) < instrs.index(use_instr)
        return self.strictly_dominates(def_block, use_block)


def _compute_idoms(
    nodes: List[BasicBlock],
    preds_of,
    root: BasicBlock,
) -> Dict[BasicBlock, BasicBlock]:
    """Cooper–Harvey–Kennedy 'engineered' dominance algorithm."""
    index = {b: i for i, b in enumerate(nodes)}  # reverse-postorder numbers
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in nodes}
    idom[root] = root

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in nodes:
            if block is root:
                continue
            new_idom: Optional[BasicBlock] = None
            for pred in preds_of(block):
                if pred not in index or idom[pred] is None:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom[block] is not new_idom:
                idom[block] = new_idom
                changed = True
    return {b: d for b, d in idom.items() if d is not None}


def compute_dominator_tree(function: Function) -> DominatorTree:
    nodes = reverse_postorder(function)
    idom = _compute_idoms(nodes, lambda b: b.preds, function.entry)
    return DominatorTree(idom, function.entry, is_post=False)


class _VirtualExit:
    """Sentinel root for the post-dominator tree when the CFG has several
    (or zero) exit blocks."""

    name = "<virtual-exit>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<virtual exit>"


def compute_postdominator_tree(function: Function) -> DominatorTree:
    """Post-dominator tree.  If the function has a single ``ret`` block the
    tree is rooted there; otherwise a virtual exit is used and remains the
    root (callers see ``idom(block) is None`` only at the root)."""
    reachable = reverse_postorder(function)
    exits = [b for b in reachable if isinstance(b.terminator, Ret)]

    if len(exits) == 1:
        root = exits[0]
        virtual = None
    else:
        root = _VirtualExit()
        virtual = root

    # Restrict to the reachable subgraph: an exit block may have
    # predecessors that are unreachable from the entry, and the reverse
    # DFS below must not wander into them.
    reachable_set = set(reachable)
    succs_of = {}
    preds_of = {}
    for block in reachable:
        succs_of[block] = [s for s in block.succs if s in reachable_set]
        preds_of[block] = [p for p in block.preds if p in reachable_set]
    if virtual is not None:
        succs_of[virtual] = []
        preds_of[virtual] = list(exits)
        for block in exits:
            succs_of[block] = succs_of[block] + [virtual]

    # Reverse-CFG reverse postorder, starting from the exit root.
    order: List[BasicBlock] = []
    visited: Set = {root}
    stack = [(root, iter(preds_of.get(root, [])))]
    while stack:
        node, preds = stack[-1]
        advanced = False
        for pred in preds:
            if pred not in visited:
                visited.add(pred)
                stack.append((pred, iter(preds_of[pred])))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()

    idom = _compute_idoms(order, lambda b: succs_of.get(b, []), root)
    return DominatorTree(idom, root, is_post=True)


def immediate_postdominator(pdt: DominatorTree, block: BasicBlock) -> Optional[BasicBlock]:
    """The IPDOM of ``block`` as a real basic block, or ``None`` when the
    immediate post-dominator is the virtual exit."""
    if not pdt.contains(block):
        return None
    parent = pdt.idom(block)
    if parent is None or isinstance(parent, _VirtualExit):
        return None
    return parent


def dominance_frontier(function: Function, dt: DominatorTree) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Classic dominance frontier (used by SSA repair and divergence
    analysis' sync-dependence computation, via the *post*-dominance
    frontier on the reversed CFG)."""
    frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in function.blocks}
    for block in function.blocks:
        if not dt.contains(block):
            continue
        preds = [p for p in block.preds if dt.contains(p)]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner is not dt.idom(block) and runner is not None:
                frontier[runner].add(block)
                runner = dt.idom(runner)
    return frontier


def postdominance_frontier(function: Function, pdt: DominatorTree) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Post-dominance frontier: ``b in PDF(a)`` means ``a``'s execution is
    control-dependent on the branch in ``b``."""
    frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in function.blocks}
    for block in function.blocks:
        if not pdt.contains(block):
            continue
        succs = [s for s in block.succs if pdt.contains(s)]
        if len(succs) < 2:
            continue
        for succ in succs:
            runner = succ
            while runner is not pdt.idom(block) and runner is not None \
                    and not isinstance(runner, _VirtualExit):
                frontier[runner].add(block)
                parent = pdt.idom(runner)
                if parent is None:
                    break
                runner = parent
    return frontier
