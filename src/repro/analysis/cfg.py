"""CFG traversal utilities: orders, reachability, and edge surgery.

These helpers operate on :class:`~repro.ir.block.BasicBlock` graphs and are
shared by every analysis and transform in the repository.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch


def _fast_succs(block: BasicBlock):
    """Raw successor list of a block's terminator (may contain duplicates;
    cheap — for traversal hot paths where dedup is irrelevant)."""
    instrs = block._instructions
    if instrs:
        last = instrs[-1]
        if isinstance(last, Branch):
            return last._successors
    return ()


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    order: List[BasicBlock] = []
    visited: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to avoid recursion limits on unrolled CFGs.
        stack = [(block, iter(_fast_succs(block)))]
        visited.add(block)
        while stack:
            node, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(_fast_succs(succ))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(function.entry)
    order.reverse()
    return order


def postorder(function: Function) -> List[BasicBlock]:
    order = reverse_postorder(function)
    order.reverse()
    return order


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    return set(reverse_postorder(function))


def reachable_from(
    start: BasicBlock,
    stop: Optional[BasicBlock] = None,
    follow: Optional[Callable[[BasicBlock], Iterable[BasicBlock]]] = None,
) -> Set[BasicBlock]:
    """Blocks reachable from ``start`` without passing *through* ``stop``.

    ``stop`` itself is never included.  Used to enumerate the nodes of a
    region ``(entry, exit)``.
    """
    follow = follow or _fast_succs
    seen: Set[BasicBlock] = set()
    work = [start]
    while work:
        block = work.pop()
        if block in seen or block is stop:
            continue
        seen.add(block)
        work.extend(follow(block))
    return seen


def split_edge(pred: BasicBlock, succ: BasicBlock, name: str = "split") -> BasicBlock:
    """Insert a fresh block on the edge ``pred -> succ``.

    φ nodes in ``succ`` are retargeted to the new block.  Returns the new
    block (which ends in an unconditional branch to ``succ``).
    """
    function = pred.parent
    new_block = function.add_block(name, after=pred)
    term = pred.terminator
    if not isinstance(term, Branch):
        raise ValueError(f"predecessor {pred.name} has no branch terminator")
    # A conditional branch may have two edges to succ; redirect all of them.
    term.replace_successor(succ, new_block)
    new_block.append(Branch([succ]))
    for phi in succ.phis:
        phi.replace_incoming_block(pred, new_block)
    return new_block


def verify_preds_consistent(function: Function) -> None:
    """Assert the cached predecessor lists match the terminator edges."""
    expected: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, Branch):
            for succ in block.succs:
                expected[succ].append(block)
    for block in function.blocks:
        if set(block.preds) != set(expected[block]):
            raise AssertionError(
                f"stale predecessor list on {block.name}: "
                f"cached {[p.name for p in block.preds]} vs "
                f"actual {[p.name for p in expected[block]]}"
            )
