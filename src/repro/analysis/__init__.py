"""CFG analyses: dominance, regions, loops, divergence, latency."""

from .cfg import (
    postorder,
    reachable_blocks,
    reachable_from,
    reverse_postorder,
    split_edge,
    verify_preds_consistent,
)
from .dominators import (
    DominatorTree,
    compute_dominator_tree,
    compute_postdominator_tree,
    dominance_frontier,
    immediate_postdominator,
    postdominance_frontier,
)
from .regions import Region, is_region, region_blocks, smallest_region_containing
from .loops import Loop, LoopInfo, compute_loop_info
from .divergence import (
    DivergenceInfo,
    cached_divergence,
    compute_divergence,
    invalidate_divergence,
)
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel

__all__ = [
    "postorder", "reachable_blocks", "reachable_from", "reverse_postorder",
    "split_edge", "verify_preds_consistent",
    "DominatorTree", "compute_dominator_tree", "compute_postdominator_tree",
    "dominance_frontier", "immediate_postdominator", "postdominance_frontier",
    "Region", "is_region", "region_blocks", "smallest_region_containing",
    "Loop", "LoopInfo", "compute_loop_info",
    "DivergenceInfo", "compute_divergence",
    "cached_divergence", "invalidate_divergence",
    "DEFAULT_LATENCY_MODEL", "LatencyModel",
]
