"""CFG analyses: dominance, regions, loops, divergence, latency,
dataflow (worklist fixpoint engine), value ranges, and the symbolic
meld translation validator."""

from .cfg import (
    postorder,
    reachable_blocks,
    reachable_from,
    reverse_postorder,
    split_edge,
    verify_preds_consistent,
)
from .dominators import (
    DominatorTree,
    compute_dominator_tree,
    compute_postdominator_tree,
    dominance_frontier,
    immediate_postdominator,
    postdominance_frontier,
)
from .regions import Region, is_region, region_blocks, smallest_region_containing
from .loops import Loop, LoopInfo, compute_loop_info
from .divergence import (
    DivergenceInfo,
    cached_divergence,
    compute_divergence,
    invalidate_divergence,
)
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel
from .dataflow import (
    BACKWARD,
    DataflowAnalysis,
    DataflowResult,
    FORWARD,
    SparseSolver,
    live_variables,
    run_dataflow,
)
from .ranges import Interval, ValueRanges, compute_ranges
from .validate import (
    EQUIVALENT,
    INEQUIVALENT,
    MeldValidation,
    MeldValidationError,
    RegionCapture,
    UNSUPPORTED,
    VERDICTS,
    validate_melds_hook,
)

__all__ = [
    "postorder", "reachable_blocks", "reachable_from", "reverse_postorder",
    "split_edge", "verify_preds_consistent",
    "DominatorTree", "compute_dominator_tree", "compute_postdominator_tree",
    "dominance_frontier", "immediate_postdominator", "postdominance_frontier",
    "Region", "is_region", "region_blocks", "smallest_region_containing",
    "Loop", "LoopInfo", "compute_loop_info",
    "DivergenceInfo", "compute_divergence",
    "cached_divergence", "invalidate_divergence",
    "DEFAULT_LATENCY_MODEL", "LatencyModel",
    "FORWARD", "BACKWARD", "DataflowAnalysis", "DataflowResult",
    "SparseSolver", "run_dataflow", "live_variables",
    "Interval", "ValueRanges", "compute_ranges",
    "EQUIVALENT", "INEQUIVALENT", "UNSUPPORTED", "VERDICTS",
    "MeldValidation", "MeldValidationError", "RegionCapture",
    "validate_melds_hook",
]
