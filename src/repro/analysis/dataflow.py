"""Generic worklist fixpoint dataflow over the CFG and the SSA graph.

Two solver shapes cover every dataflow client in the repository:

* :func:`run_dataflow` — the classic block-level engine.  A
  :class:`DataflowAnalysis` describes direction (forward/backward),
  boundary/initial states, ``join`` and a per-block ``transfer``; the
  engine seeds a worklist in the direction's natural order and iterates
  to a fixpoint.  :func:`live_variables` is the in-repo backward client
  (and the reference example for new analyses).

* :class:`SparseSolver` — the sparse SSA engine.  Lattice facts attach
  to :class:`~repro.ir.values.Value` objects and propagate along
  def-use edges only, which is the right shape for value analyses such
  as the interval ranges of :mod:`repro.analysis.ranges`: a changed
  fact re-queues exactly the instructions that consume it.

Both engines are deliberately analysis-agnostic: lattice elements are
opaque objects compared with ``==``, and monotonicity is the client's
contract.  A ``widen`` hook (applied after ``max_iterations_before_widen``
visits of the same node) keeps infinite-height lattices — intervals —
terminating without the client littering transfer functions with
iteration counters.  Results are plain dictionaries, so callers memoize
them the same way :class:`repro.lint.engine.LintContext` memoizes its
other analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import Value

from .cfg import postorder, reverse_postorder

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis:
    """A block-level dataflow problem: direction + lattice + transfer.

    Subclasses set :attr:`direction` and implement the four hooks.
    States are opaque lattice elements compared with ``==``; ``join``
    must be monotone over the inputs it receives.
    """

    #: :data:`FORWARD` (facts flow entry -> exit) or :data:`BACKWARD`
    direction: str = FORWARD

    def boundary(self, function: Function) -> object:
        """State at the boundary node (entry for forward, exits for
        backward)."""
        raise NotImplementedError

    def initial(self) -> object:
        """Optimistic starting state of every non-boundary node."""
        raise NotImplementedError

    def join(self, states: List[object]) -> object:
        """Combine the states flowing into a node (empty list allowed)."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state: object) -> object:
        """Propagate ``state`` through ``block``; must not mutate it."""
        raise NotImplementedError

    def widen(self, old: object, new: object) -> object:
        """Accelerate convergence after repeated visits (default: ``new``).

        Only consulted once a node has been re-transferred
        ``max_iterations_before_widen`` times, so finite lattices never
        pay for it."""
        return new


@dataclass
class DataflowResult:
    """Fixpoint states per block.

    ``state_in``/``state_out`` follow program order regardless of
    direction: for a backward analysis ``state_in`` is the fact holding
    *before* the block executes (the analysis' output edge)."""

    state_in: Dict[BasicBlock, object] = field(default_factory=dict)
    state_out: Dict[BasicBlock, object] = field(default_factory=dict)
    iterations: int = 0


def run_dataflow(function: Function, analysis: DataflowAnalysis,
                 max_iterations_before_widen: int = 32,
                 max_visits: int = 10_000) -> DataflowResult:
    """Solve ``analysis`` over ``function`` to a fixpoint.

    The worklist is seeded in reverse postorder for forward problems and
    postorder for backward ones, so acyclic CFGs converge in one sweep.
    ``max_visits`` is a hard cap against a non-monotone client; hitting
    it raises rather than silently returning a non-fixpoint.
    """
    forward = analysis.direction == FORWARD
    order = reverse_postorder(function) if forward else postorder(function)
    position = {block: i for i, block in enumerate(order)}

    def inputs_of(block: BasicBlock) -> List[BasicBlock]:
        return block.preds if forward else block.succs

    def is_boundary(block: BasicBlock) -> bool:
        if forward:
            return block is function.entry
        return not block.succs

    result = DataflowResult()
    pre: Dict[BasicBlock, object] = {}    # fact entering the transfer
    post: Dict[BasicBlock, object] = {}   # fact leaving the transfer
    visits: Dict[BasicBlock, int] = {}

    worklist = list(order)
    queued: Set[BasicBlock] = set(worklist)
    total_visits = 0
    while worklist:
        # Pop in analysis order: keeps the sweep cache-friendly and
        # deterministic (sets alone would make iteration order vary).
        worklist.sort(key=lambda b: position.get(b, len(position)))
        block = worklist.pop(0)
        queued.discard(block)
        total_visits += 1
        if total_visits > max_visits:
            raise RuntimeError(
                f"dataflow on @{function.name} did not converge in "
                f"{max_visits} node visits (non-monotone transfer?)")

        incoming = [post[p] for p in inputs_of(block) if p in post]
        if is_boundary(block):
            state = analysis.boundary(function)
            if incoming:  # e.g. a loop edge back into the entry
                state = analysis.join([state] + incoming)
        elif incoming:
            state = analysis.join(incoming)
        else:
            state = analysis.initial()

        new_post = analysis.transfer(block, state)
        visits[block] = visits.get(block, 0) + 1
        if block in post and visits[block] > max_iterations_before_widen:
            new_post = analysis.widen(post[block], new_post)
        changed = block not in post or post[block] != new_post
        pre[block] = state
        post[block] = new_post
        if changed:
            targets = block.succs if forward else block.preds
            for target in targets:
                if target not in queued:
                    worklist.append(target)
                    queued.add(target)

    result.iterations = total_visits
    if forward:
        result.state_in, result.state_out = pre, post
    else:
        result.state_in, result.state_out = post, pre
    return result


# ---------------------------------------------------------------------------
# Sparse SSA solver


class SparseSolver:
    """Worklist propagation over def-use edges of the SSA graph.

    The client supplies:

    * ``bottom`` — the optimistic initial fact of every value;
    * ``join(a, b)`` — the lattice join;
    * ``transfer(instr, fact_of)`` — the fact produced by an
      instruction, reading operand facts through ``fact_of``;
    * optional ``widen(old, new)`` — applied after a value has been
      recomputed ``widen_after`` times (infinite-height lattices).

    Non-instruction values (arguments, constants, undef) are seeded via
    :meth:`seed` or resolved lazily through the client's ``transfer``
    conventions; anything never seeded or computed reads as ``bottom``.
    """

    def __init__(self, bottom: object,
                 join: Callable[[object, object], object],
                 transfer: Callable[[Instruction, Callable[[Value], object]],
                                    object],
                 widen: Optional[Callable[[object, object], object]] = None,
                 widen_after: int = 16) -> None:
        self.bottom = bottom
        self.join = join
        self.transfer = transfer
        self.widen = widen
        self.widen_after = widen_after
        self.facts: Dict[int, Tuple[Value, object]] = {}
        self._recomputations: Dict[int, int] = {}

    def fact_of(self, value: Value) -> object:
        entry = self.facts.get(id(value))
        return entry[1] if entry is not None else self.bottom

    def seed(self, value: Value, fact: object) -> None:
        self.facts[id(value)] = (value, fact)

    def solve(self, function: Function, max_visits: int = 100_000) -> None:
        """Iterate every instruction of ``function`` to a fixpoint."""
        instrs = [i for block in function.blocks for i in block
                  if not i.type.is_void]
        position = {id(i): n for n, i in enumerate(instrs)}
        worklist = list(instrs)
        queued = {id(i) for i in instrs}
        visits = 0
        while worklist:
            worklist.sort(key=lambda i: position[id(i)])
            instr = worklist.pop(0)
            queued.discard(id(instr))
            visits += 1
            if visits > max_visits:
                raise RuntimeError(
                    f"sparse dataflow on @{function.name} did not converge "
                    f"in {max_visits} visits")
            new = self.transfer(instr, self.fact_of)
            old = self.fact_of(instr)
            count = self._recomputations.get(id(instr), 0) + 1
            self._recomputations[id(instr)] = count
            if self.widen is not None and count > self.widen_after:
                new = self.widen(old, new)
            if new == old:
                continue
            self.facts[id(instr)] = (instr, new)
            for user, _ in instr.uses:
                if (isinstance(user, Instruction) and user.parent is not None
                        and not user.type.is_void
                        and id(user) in position
                        and id(user) not in queued):
                    worklist.append(user)
                    queued.add(id(user))


# ---------------------------------------------------------------------------
# Liveness: the in-repo block-level client (and the reference example)


class _Liveness(DataflowAnalysis):
    direction = BACKWARD

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, states: List[object]) -> frozenset:
        out: Set[Value] = set()
        for state in states:
            out |= state
        return frozenset(out)

    def transfer(self, block: BasicBlock, state: object) -> frozenset:
        live: Set[Value] = set(state)
        for instr in reversed(block.instructions):
            live.discard(instr)
            for operand in instr.operands:
                if isinstance(operand, Instruction) or _is_argument(operand):
                    live.add(operand)
        return frozenset(live)


def _is_argument(value: Value) -> bool:
    from repro.ir.values import Argument
    return isinstance(value, Argument)


def live_variables(function: Function) -> Dict[BasicBlock, Set[Value]]:
    """Live-in sets per block (instructions + arguments).

    φ incomings count as uses of the φ's own block — a sound
    overapproximation (the value reads as live on every incoming edge,
    not only the one supplying it) that keeps the analysis a pure
    block-level dataflow.
    """
    result = run_dataflow(function, _Liveness())
    return {block: set(state) for block, state in result.state_in.items()}
