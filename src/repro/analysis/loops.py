"""Natural-loop detection (``LoopInfo``).

The loop unroller (:mod:`repro.transforms.unroll`) relies on this analysis;
the paper's evaluation depends on ``-O3``-style unrolling to expose the
repeated isomorphic subgraphs that CFM melds (PCM, bitonic sort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch

from .dominators import DominatorTree, compute_dominator_tree


@dataclass
class Loop:
    """A natural loop: header plus the union of its back-edge bodies."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def latches(self) -> List[BasicBlock]:
        """Blocks inside the loop with an edge back to the header."""
        return [p for p in self.header.preds if p in self.blocks]

    @property
    def single_latch(self) -> Optional[BasicBlock]:
        latches = self.latches
        return latches[0] if len(latches) == 1 else None

    @property
    def exiting_blocks(self) -> List[BasicBlock]:
        """Blocks inside the loop with an edge leaving it."""
        return [b for b in self.blocks
                if any(s not in self.blocks for s in b.succs)]

    @property
    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop targeted by edges from inside."""
        seen: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.succs:
                if succ not in self.blocks and succ not in seen:
                    seen.append(succ)
        return seen

    @property
    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header whose only
        successor is the header, if it exists."""
        outside = [p for p in self.header.preds if p not in self.blocks]
        if len(outside) == 1 and outside[0].single_succ is self.header:
            return outside[0]
        return None

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:
        return f"<Loop header=%{self.header.name} ({len(self.blocks)} blocks)>"


class LoopInfo:
    """All natural loops of a function, with the nesting forest."""

    def __init__(self, loops: List[Loop]) -> None:
        self.loops = loops
        self._loop_of: Dict[BasicBlock, Loop] = {}
        # Innermost loop wins: assign from outermost to innermost.
        for loop in sorted(loops, key=lambda l: len(l.blocks), reverse=True):
            for block in loop.blocks:
                self._loop_of[block] = loop

    @property
    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``."""
        return self._loop_of.get(block)

    def innermost_loops(self) -> List[Loop]:
        return [l for l in self.loops if not l.children]

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)


def compute_loop_info(function: Function, dt: Optional[DominatorTree] = None) -> LoopInfo:
    """Find natural loops via back edges (``latch -> header`` with header
    dominating latch), merging loops that share a header."""
    dt = dt or compute_dominator_tree(function)
    back_edges: List[Tuple[BasicBlock, BasicBlock]] = []
    for block in function.blocks:
        if not dt.contains(block):
            continue
        for succ in block.succs:
            if dt.contains(succ) and dt.dominates(succ, block):
                back_edges.append((block, succ))

    loops_by_header: Dict[BasicBlock, Loop] = {}
    for latch, header in back_edges:
        loop = loops_by_header.setdefault(header, Loop(header, {header}))
        # Walk predecessors backwards from the latch until the header.
        work = [latch]
        while work:
            block = work.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            work.extend(block.preds)

    loops = list(loops_by_header.values())
    # Build the nesting forest: parent = smallest strictly-containing loop.
    for loop in loops:
        candidates = [
            other for other in loops
            if other is not loop and loop.header in other.blocks
            and loop.blocks < other.blocks
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.blocks))
            loop.parent.children.append(loop)
    return LoopInfo(loops)
