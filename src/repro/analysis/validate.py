"""Symbolic translation validation for control-flow melds.

For every meld the CFM pass accepts, this module proves (or refutes)
that the transformed region is observably equivalent to the original
one under **both** divergence-mask cases — the guarantee the dynamic
difftest oracle can only sample.  The protocol mirrors classic
translation validation:

1. *before* the meld, snapshot the SESE region (a detached structural
   clone — the melder is about to consume the original blocks);
2. *after* melding + SSA repair + unpredication (but before the §IV-F
   post-optimizations), symbolically execute both versions from the
   region entry's terminator to its exit, once with the divergent
   condition ``C`` pinned true and once pinned false;
3. compare, per case and per internal path, the ordered observable
   effects (stores, barriers, definite traps), the trap-capable
   operations actually executed, and the values flowing out through the
   exit block's φ nodes.

Internal branches whose condition the mask case does not decide (nested
data-dependent divergence) are *forked*: the undecided condition
expression is pinned true in one path and false in the other, and —
crucially — the same pin applies to the pre- and post-meld runs, so
both programs are compared under identical assumptions.

Live-in values (everything defined outside the executed region) are
named by a :class:`SymbolTable` shared across all runs of one
validation, keyed by object identity — melding never recreates values
defined outside the region, so identity is a sound correlation.

Verdicts:

* ``EQUIVALENT`` — every case × path matches; ``undef`` in the
  pre-meld program may be *refined* to any concrete post-meld value
  (the usual refinement direction), never the reverse.
* ``INEQUIVALENT`` — some mask case provably changes an observable.
  The :func:`validate_melds_hook` turns this into a hard
  :class:`MeldValidationError`, symmetric to the pipeline's
  ``verify_after_each`` / ``lint_after_each`` hooks.
* ``UNSUPPORTED`` — the region leaves the validator's decidable
  fragment (a cycle inside the region, path or step budget blowout, an
  uncorrelatable exit φ).  This is the documented soundness boundary
  (``docs/analysis.md``): unsupported melds are *not* treated as
  failures, they simply fall back to the dynamic oracle's coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.scalars import EvalError, eval_binary, eval_cast, eval_fcmp, \
    eval_icmp
from repro.ir.types import IntType
from repro.ir.values import Constant, Undef, Value

from .cfg import reachable_from

EQUIVALENT = "EQUIVALENT"
INEQUIVALENT = "INEQUIVALENT"
UNSUPPORTED = "UNSUPPORTED"
VERDICTS = (EQUIVALENT, INEQUIVALENT, UNSUPPORTED)

_UNDEF = ("undef",)

#: trap-capable integer ops: division by zero, shift past the width
_DIV_OPS = frozenset({Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM})
_SHIFT_OPS = frozenset({Opcode.SHL, Opcode.LSHR, Opcode.ASHR})


class SymbolTable:
    """Stable symbolic names for live-in values, keyed by identity.

    Shared between every pre/post run of one validation so the same
    outside-the-region :class:`Value` reads as the same symbol in both
    programs."""

    def __init__(self) -> None:
        self._symbols: Dict[int, Tuple[object, ...]] = {}
        self._pinned: List[Value] = []  # keep ids stable for our lifetime

    def expr_of(self, value: Value) -> Tuple[object, ...]:
        expr = self._symbols.get(id(value))
        if expr is None:
            expr = ("sym", len(self._symbols), value.name or "v")
            self._symbols[id(value)] = expr
            self._pinned.append(value)
        return expr


def _const_expr(value: Constant) -> Tuple[object, ...]:
    return ("const", value.value, repr(value.type))


def _is_const(expr) -> bool:
    return isinstance(expr, tuple) and expr and expr[0] == "const"


class _Unsupported(Exception):
    pass


class _Fork(Exception):
    """A branch condition neither the mask case nor the current
    assumptions decide: the driver re-runs both programs twice with the
    condition expression pinned each way."""

    def __init__(self, expr: Tuple[object, ...]) -> None:
        self.expr = expr
        super().__init__(repr(expr))


@dataclass
class CaseSummary:
    """Observables of one symbolic execution (one case × assumption set)."""

    case: bool
    #: ordered effects: ("store", ptr, value) | ("barrier",) |
    #: ("call", name, args, n) — comparison is order-sensitive
    events: List[Tuple[object, ...]] = field(default_factory=list)
    #: trap-capable ops executed, in order, with the operand that decides
    #: the trap: ("div"|"shift", opcode, expr)
    traps: List[Tuple[object, ...]] = field(default_factory=list)
    #: (φ node, symbolic incoming value) at arrival in the exit block
    phi_outputs: List[Tuple[Phi, Tuple[object, ...]]] = field(
        default_factory=list)
    #: opcode of a statically-definite trap that halted the execution
    halted: Optional[str] = None
    unsupported: Optional[str] = None


class _CaseExecutor:
    """One symbolic walk from a start edge to the region exit."""

    def __init__(self, exit_block: BasicBlock, symtab: SymbolTable,
                 condition: Value, case: bool,
                 assumptions: Dict[Tuple[object, ...], bool],
                 phi_incoming: Callable[[Phi, BasicBlock], Optional[Value]],
                 max_steps: int) -> None:
        self.exit_block = exit_block
        self.symtab = symtab
        self.assumptions = assumptions
        self.phi_incoming = phi_incoming
        self.max_steps = max_steps
        self.env: Dict[int, Tuple[object, ...]] = {
            id(condition): ("const", 1 if case else 0, "i1")}
        self.case = case

    def expr(self, value: Value) -> Tuple[object, ...]:
        if isinstance(value, Constant):
            return _const_expr(value)
        if isinstance(value, Undef):
            return _UNDEF
        expr = self.env.get(id(value))
        if expr is None:
            expr = self.symtab.expr_of(value)
        pinned = self.assumptions.get(expr)
        if pinned is not None:
            return ("const", 1 if pinned else 0, "i1")
        return expr

    def run(self, start: BasicBlock, pred: BasicBlock) -> CaseSummary:
        summary = CaseSummary(case=self.case)
        try:
            block = start
            visited = set()
            steps = 0
            while block is not self.exit_block:
                if block in visited:
                    raise _Unsupported(f"cycle through block {block.name}")
                visited.add(block)
                self._enter_phis(block, pred, summary)
                next_edge = None
                for instr in block:
                    if isinstance(instr, Phi):
                        continue
                    steps += 1
                    if steps > self.max_steps:
                        raise _Unsupported(
                            f"step budget ({self.max_steps}) exceeded")
                    next_edge = self._step(instr, block, summary)
                    if summary.halted is not None:
                        return summary
                    if next_edge is not None:
                        break
                if next_edge is None:
                    raise _Unsupported(
                        f"block {block.name} fell through without a branch")
                block, pred = next_edge
            # Arrival at the exit: the φ outputs are the region's data
            # interface (values defined inside a SESE region can only
            # escape through them).
            for phi in self.exit_block.phis:
                incoming = self.phi_incoming(phi, pred)
                if incoming is None:
                    raise _Unsupported(
                        f"exit φ {phi.name} has no incoming for "
                        f"{pred.name}")
                summary.phi_outputs.append((phi, self.expr(incoming)))
        except _Unsupported as exc:
            summary.unsupported = str(exc)
        return summary

    # -- helpers ------------------------------------------------------------

    def _enter_phis(self, block: BasicBlock, pred: BasicBlock,
                    summary: CaseSummary) -> None:
        # Parallel φ semantics: read all incomings before binding any.
        phis = block.phis
        values = []
        for phi in phis:
            try:
                values.append(self.expr(phi.incoming_for(pred)))
            except KeyError:
                raise _Unsupported(
                    f"φ {phi.name} has no incoming for {pred.name}")
        for phi, expr in zip(phis, values):
            self.env[id(phi)] = expr

    def follow(self, terminator: Optional[Instruction], block: BasicBlock
               ) -> Tuple[BasicBlock, BasicBlock]:
        if not isinstance(terminator, Branch):
            raise _Unsupported(
                f"block {block.name} ends in "
                f"{'a return' if isinstance(terminator, Ret) else 'no branch'}"
                f" inside the region")
        if not terminator.is_conditional:
            return terminator.true_successor, block
        cond = self.expr(terminator.condition)
        if not _is_const(cond):
            raise _Fork(cond)
        taken = (terminator.true_successor if cond[1]
                 else terminator.false_successor)
        return taken, block

    def _step(self, instr: Instruction, block: BasicBlock,
              summary: CaseSummary
              ) -> Optional[Tuple[BasicBlock, BasicBlock]]:
        """Execute one instruction; returns the taken edge for branches."""
        if isinstance(instr, Branch):
            return self.follow(instr, block)
        if isinstance(instr, Ret):
            raise _Unsupported(f"return inside the region ({block.name})")
        if isinstance(instr, Store):
            summary.events.append(
                ("store", self.expr(instr.pointer), self.expr(instr.value)))
            return None
        if isinstance(instr, Call):
            if instr.is_barrier:
                summary.events.append(("barrier",))
                return None
            if instr.is_pure_intrinsic:
                args = tuple(self.expr(a) for a in instr.args)
                self.env[id(instr)] = self._fold_intrinsic(instr, args)
                return None
            args = tuple(self.expr(a) for a in instr.args)
            event = ("call", instr.callee, args, len(summary.events))
            summary.events.append(event)
            self.env[id(instr)] = event
            return None
        if isinstance(instr, Load):
            # A load is a pure function of its address and the memory
            # state, which in a straight-line path is determined by the
            # number of effects executed so far.
            self.env[id(instr)] = ("load", instr.address_space,
                                   self.expr(instr.pointer),
                                   len(summary.events))
            return None
        if isinstance(instr, BinaryOp):
            self.env[id(instr)] = self._binary(instr, summary)
            return None
        if isinstance(instr, (ICmp, FCmp)):
            a, b = self.expr(instr.lhs), self.expr(instr.rhs)
            if _is_const(a) and _is_const(b):
                if isinstance(instr, ICmp):
                    value = eval_icmp(instr.predicate, a[1], b[1],
                                      instr.lhs.type)
                else:
                    value = eval_fcmp(instr.predicate, a[1], b[1])
                self.env[id(instr)] = ("const", value, "i1")
            else:
                kind = "icmp" if isinstance(instr, ICmp) else "fcmp"
                self.env[id(instr)] = ("op", f"{kind}:{instr.predicate}",
                                       (a, b))
            return None
        if isinstance(instr, Select):
            cond = self.expr(instr.condition)
            t, f = self.expr(instr.true_value), self.expr(instr.false_value)
            if _is_const(cond):
                self.env[id(instr)] = t if cond[1] else f
            elif t == f:
                self.env[id(instr)] = t
            else:
                self.env[id(instr)] = ("op", "select", (cond, t, f))
            return None
        if isinstance(instr, Cast):
            inner = self.expr(instr.value)
            if _is_const(inner):
                value = eval_cast(instr.opcode, inner[1], instr.value.type,
                                  instr.type)
                self.env[id(instr)] = ("const", value, repr(instr.type))
            else:
                self.env[id(instr)] = ("op", f"{instr.opcode}:{instr.type!r}",
                                       (inner,))
            return None
        if isinstance(instr, GetElementPtr):
            self.env[id(instr)] = ("op", "gep", (self.expr(instr.base),
                                                 self.expr(instr.index)))
            return None
        raise _Unsupported(f"unsupported opcode {instr.opcode!r}")

    def _binary(self, instr: BinaryOp,
                summary: CaseSummary) -> Tuple[object, ...]:
        a, b = self.expr(instr.lhs), self.expr(instr.rhs)
        opcode = instr.opcode
        # Record the trap-deciding operand of every trap-capable op the
        # path actually executes; a meld must neither add nor remove one.
        if opcode in _DIV_OPS and not (_is_const(b) and b[1] != 0):
            summary.traps.append(("div", opcode, b))
        elif opcode in _SHIFT_OPS and isinstance(instr.type, IntType) \
                and not (_is_const(b) and 0 <= b[1] < instr.type.bits):
            summary.traps.append(("shift", opcode, b))
        if _is_const(a) and _is_const(b):
            try:
                value = eval_binary(opcode, a[1], b[1], instr.type)
            except EvalError:
                summary.halted = opcode
                return _UNDEF
            return ("const", value, repr(instr.type))
        return ("op", opcode, (a, b))

    @staticmethod
    def _fold_intrinsic(instr: Call, args) -> Tuple[object, ...]:
        if len(args) == 2 and all(_is_const(a) for a in args):
            from repro.ir.instructions import IntrinsicName
            if instr.callee == IntrinsicName.MIN:
                return ("const", min(args[0][1], args[1][1]),
                        repr(instr.type))
            if instr.callee == IntrinsicName.MAX:
                return ("const", max(args[0][1], args[1][1]),
                        repr(instr.type))
        return ("op", f"call:{instr.callee}", tuple(args))


def _refines(pre, post) -> bool:
    """Is ``post`` equal to ``pre`` modulo refinement of pre-``undef``?

    Structural equality over the expression trees, except that an
    ``undef`` leaf in the *pre* program matches anything — a transform
    may give undef a concrete value, never the other way around."""
    if pre == post:
        return True
    if pre == _UNDEF:
        return True
    if (isinstance(pre, tuple) and isinstance(post, tuple)
            and len(pre) == len(post)):
        return all(_refines(a, b) for a, b in zip(pre, post))
    return False


@dataclass
class MeldValidation:
    """Verdict of one meld's translation validation."""

    region_entry: str
    verdict: str
    detail: str = ""
    seconds: float = 0.0
    #: case × assumption paths compared (diagnostics/tests)
    paths: int = 0

    @property
    def ok(self) -> bool:
        return self.verdict != INEQUIVALENT


def _compare_case(pre: CaseSummary, post: CaseSummary) -> Tuple[str, str]:
    label = "C=true" if pre.case else "C=false"
    if pre.unsupported is not None:
        return UNSUPPORTED, f"[{label}] pre-meld: {pre.unsupported}"
    if post.unsupported is not None:
        return UNSUPPORTED, f"[{label}] post-meld: {post.unsupported}"
    if pre.halted != post.halted:
        side = "removes" if post.halted is None else "introduces"
        return INEQUIVALENT, (
            f"[{label}] meld {side} a definite trap "
            f"({pre.halted or post.halted})")
    if len(pre.events) != len(post.events):
        return INEQUIVALENT, (
            f"[{label}] effect count changed: "
            f"{len(pre.events)} -> {len(post.events)}")
    for i, (a, b) in enumerate(zip(pre.events, post.events)):
        if not _refines(a, b):
            return INEQUIVALENT, (
                f"[{label}] effect #{i} differs: pre {a!r} vs post {b!r}")
    if pre.traps != post.traps:
        return INEQUIVALENT, (
            f"[{label}] trap-capable operations differ: "
            f"pre {pre.traps!r} vs post {post.traps!r}")
    post_outputs = {id(phi): expr for phi, expr in post.phi_outputs}
    for phi, pre_expr in pre.phi_outputs:
        if id(phi) not in post_outputs:
            return UNSUPPORTED, (
                f"[{label}] exit φ {phi.name} not correlatable after meld")
        if not _refines(pre_expr, post_outputs[id(phi)]):
            return INEQUIVALENT, (
                f"[{label}] exit φ {phi.name} changes value: "
                f"pre {pre_expr!r} vs post {post_outputs[id(phi)]!r}")
    return EQUIVALENT, ""


def _snapshot_blocks(blocks: List[BasicBlock]
                     ) -> Tuple[Dict[BasicBlock, BasicBlock],
                                Dict[int, Value]]:
    """Detached structural clone of ``blocks``.

    Unlike :func:`repro.transforms.clone.clone_blocks`, the clones are
    never inserted into the function and never link CFG predecessor
    lists — they exist only for the validator to walk after the melder
    has consumed the originals.  Branch targets and φ incoming blocks
    pointing inside the set are remapped to the clones; external ones
    (the region entry, the exit) are kept.

    Crucially, the finished snapshot is *invisible* to the live IR: the
    use-list entries that cloning registered on live operands are
    stripped before returning.  The melder's own SSA repair walks those
    use-lists (``replace_all_uses_with``, dominance checks) and would
    otherwise rewrite the frozen pre-image in place — exactly the
    mutation the snapshot exists to escape.
    """
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in blocks:
        clone = BasicBlock(f"{block.name}.preimage")
        block_map[block] = clone
    value_map: Dict[int, Value] = {}
    pairs: List[Tuple[BasicBlock, Instruction, Instruction]] = []
    for block in blocks:
        for instr in block:
            clone = instr.clone()
            clone.name = instr.name
            value_map[id(instr)] = clone
            pairs.append((block, instr, clone))
    for block, original, clone in pairs:
        if isinstance(clone, Phi):
            for pred in clone.incoming_blocks:
                mapped = block_map.get(pred)
                if mapped is not None:
                    clone.replace_incoming_block(pred, mapped)
        for i, operand in enumerate(clone.operands):
            mapped_value = value_map.get(id(operand))
            if mapped_value is not None:
                clone.set_operand(i, mapped_value)
        if isinstance(clone, Branch):
            for i, succ in enumerate(clone.successors):
                mapped = block_map.get(succ)
                if mapped is not None:
                    clone.set_successor(i, mapped)
        target = block_map[block]
        clone.parent = target
        target._instructions.append(clone)
    # Detach from every live use-list: operand slots stay (the walk reads
    # them), the reverse edges go.
    for _, _, clone in pairs:
        for index, operand in enumerate(clone.operands):
            if operand is not None:
                operand._remove_use(clone, index)
    return block_map, value_map


class RegionCapture:
    """Pre-meld snapshot of a region, ready to diff after the meld.

    Create one right before the melder mutates the region, then call
    :meth:`compare_against_current` once the rewritten region is in
    place (after SSA repair and unpredication)."""

    def __init__(self, entry: BasicBlock, exit_block: BasicBlock,
                 condition: Value, max_steps: int = 4000,
                 max_paths: int = 4096) -> None:
        self.entry = entry
        self.exit_block = exit_block
        self.condition = condition
        self.max_steps = max_steps
        self.max_paths = max_paths
        self.symtab = SymbolTable()

        interior = [b for b in reachable_from(entry, stop=exit_block)
                    if b is not entry]
        # Keep function order for deterministic clone naming/iteration.
        order = {b: i for i, b in enumerate(entry.parent.blocks)}
        interior.sort(key=lambda b: order.get(b, len(order)))

        # An interior-defined value used beyond the exit φs (possible
        # only when its block dominates the exit) cannot be correlated
        # once ``repair_ssa`` renames it — declare the region out of the
        # decidable fragment instead of silently under-checking.
        self._escape: Optional[str] = None
        interior_set = set(interior)
        for block in interior:
            for instr in block:
                for user in instr.users:
                    parent = getattr(user, "parent", None)
                    if parent in interior_set:
                        continue
                    if parent is exit_block and isinstance(user, Phi):
                        continue
                    self._escape = (f"value {instr.name or '<anon>'} "
                                    f"escapes the region outside its "
                                    f"exit φs")
                    break

        self._block_map, self._value_map = _snapshot_blocks(interior)

        term = entry.terminator
        if isinstance(term, Branch) and term.is_conditional:
            self._pre_targets = (
                self._block_map.get(term.true_successor,
                                    term.true_successor),
                self._block_map.get(term.false_successor,
                                    term.false_successor))
        else:
            self._pre_targets = None  # degenerate; reported UNSUPPORTED

        # The exit φs' pre-meld incomings, keyed per φ by the (cloned)
        # predecessor — the melder is about to rewrite the real ones.
        self._exit_phi_pre: List[Tuple[Phi, Dict[int, Value]]] = []
        for phi in exit_block.phis:
            per_pred: Dict[int, Value] = {}
            for value, pred in phi.incoming:
                mapped_pred = self._block_map.get(pred, pred)
                mapped_value = self._value_map.get(id(value), value)
                per_pred[id(mapped_pred)] = mapped_value
            self._exit_phi_pre.append((phi, per_pred))

    # -- runs ---------------------------------------------------------------

    def _run_pre(self, case: bool, assumptions) -> CaseSummary:
        if self._pre_targets is None:
            summary = CaseSummary(case=case)
            summary.unsupported = "region entry has no conditional branch"
            return summary

        def phi_incoming(phi: Phi, pred: BasicBlock) -> Optional[Value]:
            for recorded, per_pred in self._exit_phi_pre:
                if recorded is phi:
                    return per_pred.get(id(pred))
            return None

        executor = _CaseExecutor(self.exit_block, self.symtab,
                                 self.condition, case, assumptions,
                                 phi_incoming, self.max_steps)
        start = self._pre_targets[0] if case else self._pre_targets[1]
        return executor.run(start, self.entry)

    def _run_post(self, case: bool, assumptions) -> CaseSummary:
        def phi_incoming(phi: Phi, pred: BasicBlock) -> Optional[Value]:
            try:
                return phi.incoming_for(pred)
            except KeyError:
                return None

        executor = _CaseExecutor(self.exit_block, self.symtab,
                                 self.condition, case, assumptions,
                                 phi_incoming, self.max_steps)
        summary = CaseSummary(case=case)
        try:
            start, pred = executor.follow(self.entry.terminator, self.entry)
        except _Unsupported as exc:
            summary.unsupported = str(exc)
            return summary
        if start is self.exit_block:
            # The whole region folded away: the exit φs read their
            # entry-edge incomings directly.
            for phi in self.exit_block.phis:
                incoming = phi_incoming(phi, pred)
                if incoming is None:
                    summary.unsupported = (
                        f"exit φ {phi.name} has no incoming for "
                        f"{pred.name}")
                    return summary
                summary.phi_outputs.append((phi, executor.expr(incoming)))
            return summary
        return executor.run(start, pred)

    # -- verdict ------------------------------------------------------------

    def compare_against_current(self) -> MeldValidation:
        try:
            return self._compare()
        finally:
            self.dispose()

    def _compare(self) -> MeldValidation:
        if self._escape is not None:
            return MeldValidation(self.entry.name, UNSUPPORTED, self._escape)
        unsupported: Optional[str] = None
        paths = 0
        for case in (True, False):
            stack: List[Dict[Tuple[object, ...], bool]] = [{}]
            while stack:
                assumptions = stack.pop()
                paths += 1
                if paths > self.max_paths:
                    unsupported = (f"path explosion "
                                   f"(> {self.max_paths} case paths)")
                    break
                try:
                    pre = self._run_pre(case, assumptions)
                    post = self._run_post(case, assumptions)
                except _Fork as fork:
                    for pin in (True, False):
                        extended = dict(assumptions)
                        extended[fork.expr] = pin
                        stack.append(extended)
                    continue
                verdict, detail = _compare_case(pre, post)
                if verdict == INEQUIVALENT:
                    return MeldValidation(self.entry.name, INEQUIVALENT,
                                          detail, paths=paths)
                if verdict == UNSUPPORTED and unsupported is None:
                    unsupported = detail
        if unsupported is not None:
            return MeldValidation(self.entry.name, UNSUPPORTED, unsupported,
                                  paths=paths)
        return MeldValidation(self.entry.name, EQUIVALENT, paths=paths)

    def dispose(self) -> None:
        """Drop the snapshot (it holds no live use-list entries)."""
        self._block_map = {}


class MeldValidationError(RuntimeError):
    """A melded region failed symbolic translation validation."""

    def __init__(self, pass_name: str, validation: MeldValidation) -> None:
        self.pass_name = pass_name
        self.validation = validation
        super().__init__(
            f"meld at region {validation.region_entry!r} is INEQUIVALENT "
            f"after pass {pass_name!r}: {validation.detail}")


def validate_melds_hook(pass_name: str, function, result) -> None:
    """The standard ``PassPipeline(validate_melds=...)`` hook.

    Inspects the :class:`PassResult` for CFM statistics carrying
    per-meld validations (the pass records them when its config enables
    validation) and raises :class:`MeldValidationError` on the first
    ``INEQUIVALENT`` verdict.  ``UNSUPPORTED`` melds pass — see the
    module docstring for the soundness boundary."""
    stats = getattr(result, "stats", None)
    for validation in getattr(stats, "validations", None) or []:
        if validation.verdict == INEQUIVALENT:
            raise MeldValidationError(pass_name, validation)
