"""Region detection (LLVM ``RegionInfo``-style) for CFM.

A *region* ``(entry, exit)`` (Definition 2 of the paper) is a connected CFG
subgraph such that every edge from outside the region enters at ``entry``
and every edge leaving it targets ``exit``.  A *simple region* has exactly
one entry edge and one exit edge (Definition 1).

The CFM pass only needs two operations, both provided here:

* :func:`is_region` — validate a candidate ``(entry, exit)`` pair by direct
  edge inspection (sound for arbitrary CFGs, and cheap at the CFG sizes the
  pass encounters);
* :func:`smallest_region_containing` — the divergent region of a branch:
  the smallest valid ``(B, X)`` with ``X`` on ``B``'s IPDOM chain (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.ir.block import BasicBlock
from repro.ir.function import Function

from .cfg import reachable_from
from .dominators import DominatorTree, immediate_postdominator


@dataclass
class Region:
    """A validated CFG region.

    ``blocks`` contains every block of the region including ``entry`` but
    excluding ``exit`` (matching LLVM, where the exit is the first block
    *outside* the region).
    """

    entry: BasicBlock
    exit: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def size(self) -> int:
        return len(self.blocks)

    @property
    def is_simple(self) -> bool:
        """Exactly one entry edge and one exit edge (Definition 1)."""
        entry_edges = [p for p in self.entry.preds if p not in self.blocks]
        exit_edges = [p for p in self.exit.preds if p in self.blocks]
        return len(entry_edges) == 1 and len(exit_edges) == 1

    def __repr__(self) -> str:
        return f"<Region ({self.entry.name}, {self.exit.name}) {self.size} blocks>"


def region_blocks(entry: BasicBlock, exit_: BasicBlock) -> Set[BasicBlock]:
    """Blocks reachable from ``entry`` without passing through ``exit``."""
    return reachable_from(entry, stop=exit_)


def is_region(entry: BasicBlock, exit_: BasicBlock) -> Optional[Region]:
    """Validate the candidate pair and return a :class:`Region`, or ``None``.

    Checks, by direct edge inspection:

    * ``exit`` is reachable from ``entry`` (non-trivial region);
    * no edge from outside targets a region block other than ``entry``;
    * every edge leaving a region block lands inside or on ``exit``.
    """
    if entry is exit_:
        return None
    blocks = region_blocks(entry, exit_)
    if not blocks:
        return None
    # The exit must actually be reachable, otherwise (entry, exit) encloses
    # an infinite loop or a disconnected pair.
    if exit_ not in {s for b in blocks for s in b.succs}:
        return None
    for block in blocks:
        for succ in block.succs:
            if succ not in blocks and succ is not exit_:
                return None
        if block is entry:
            continue
        for pred in block.preds:
            if pred not in blocks:
                return None
    return Region(entry, exit_, blocks)


def smallest_region_containing(
    branch_block: BasicBlock,
    pdt: DominatorTree,
    max_chain: int = 64,
) -> Optional[Region]:
    """The smallest valid region whose entry is ``branch_block``.

    Candidate exits are taken from the immediate-post-dominator chain of
    ``branch_block`` (the reconvergence points); the first candidate that
    forms a valid region wins.  Returns ``None`` when no candidate on the
    chain yields a region (e.g. branches into irreducible control flow).
    """
    exit_ = immediate_postdominator(pdt, branch_block)
    for _ in range(max_chain):
        if exit_ is None:
            return None
        region = is_region(branch_block, exit_)
        if region is not None:
            return region
        exit_ = immediate_postdominator(pdt, exit_)
    return None


def enclosing_simple_regions(function: Function, dt: DominatorTree,
                             pdt: DominatorTree) -> List[Region]:
    """Enumerate all valid regions ``(E, X)`` with ``X`` on ``E``'s IPDOM
    chain — the region candidates CFM iterates over (Algorithm 1 walks
    blocks and asks for their region).  Used by tests and diagnostics."""
    regions: List[Region] = []
    for block in function.blocks:
        if len(block.succs) < 2:
            continue
        region = smallest_region_containing(block, pdt)
        if region is not None:
            regions.append(region)
    return regions
