"""Parallel sweep engine for the evaluation harness.

Every ``(kernel, block size, config)`` comparison in a figure sweep is
independent — :func:`repro.evaluation.runner.compare` builds fresh
:class:`~repro.kernels.common.KernelCase` objects per call — so
:class:`ParallelRunner` fans them out across worker processes:

* **deterministic ordering** — results come back in task-submission
  order regardless of which worker finishes first, so a parallel sweep
  produces row-for-row identical output to a serial one;
* **fault isolation** — each task runs in a worker process with an
  optional wall-clock ``timeout``; a diverging simulation is terminated
  and retried once (fresh worker) before being reported as a failure,
  so one bad configuration cannot hang a whole figure;
* **compile caching** — every task uses a :class:`CompileCache`, so the
  ``-O3`` stage runs once per comparison instead of once per arm; with
  :attr:`SweepTask.cache_dir` (or ``REPRO_COMPILE_CACHE`` in the
  environment) the cache is disk-backed and **shared across worker
  processes and sweep repeats** — a warm sweep replays whole pipelines
  instead of compiling.

This module is the sweep-shaped job layer over the generic
:class:`repro.scheduler.Scheduler`: the scheduler owns worker processes,
queueing, retry, timeout and recycling; this layer owns what a sweep
task *is* (:class:`SweepTask` → :func:`run_task` → :class:`TaskResult`)
and how its telemetry folds into the ambient metrics registry.

``workers <= 1`` runs tasks serially in-process (the scheduler's inline
mode — the reference path the determinism tests compare against);
``workers > 1`` uses a pool of **persistent** worker processes, each
serving many tasks, with an optional :class:`~repro.scheduler.RecyclePolicy`
retiring workers after N tasks or M bytes RSS.  A task that fails in a
persistent worker quarantines that worker's in-process lowering memo
(see :func:`repro.simt.clear_lowering_memo`) before the next dispatch,
so a crash cannot poison a later task's — or its own retry's — cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import CFMConfig
from repro.kernels.common import KernelCase
from repro.obs import (
    MetricsRegistry,
    Tracer,
    bridge_to_tracer,
    current_registry,
    record_task_seconds,
    update_cache_hit_ratio,
    use as use_tracer,
    use_registry,
)
from repro.scheduler import NO_RECYCLE, RecyclePolicy, Scheduler, Task
from repro.scheduler.core import _mp_context  # noqa: F401  (back-compat)
from repro.simt import MachineConfig

from .runner import Comparison, CompileCache, compare

#: forcibly terminated / crashed tasks are retried this many times
DEFAULT_RETRIES = 1

#: callback invoked after each terminal task result:
#: ``progress(done, total, result)``
ProgressCallback = Callable[[int, int, "TaskResult"], None]


@dataclass(frozen=True)
class SweepTask:
    """One comparison to run: kernel builder + launch configuration."""

    kernel: str
    builder: Callable[..., KernelCase]
    block_size: int
    grid_dim: int = 2
    seed: int = 1234
    config: Optional[CFMConfig] = None
    #: machine model override (warp size, latency tables, executor);
    #: None runs on repro.simt.DEFAULT_CONFIG
    machine: Optional[MachineConfig] = None
    #: capture a repro.obs trace of this task (pass spans, melding
    #: decisions, warp divergence events) into TaskResult.trace_events
    trace: bool = False
    #: directory of the persistent cross-process compile cache; None
    #: falls back to the REPRO_COMPILE_CACHE environment variable
    #: (unset/"off" → per-task in-process cache only)
    cache_dir: Optional[str] = None
    #: collect an aggregate-metrics delta for this task (a fresh
    #: repro.obs.MetricsRegistry installed for the task's duration; its
    #: snapshot rides back on TaskResult.metrics_delta so the parent can
    #: fold worker deltas into one sweep-level registry)
    metrics: bool = False


@dataclass
class TaskResult:
    """Outcome of one :class:`SweepTask` (success or terminal failure)."""

    index: int
    kernel: str
    block_size: int
    comparison: Optional[Comparison] = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    #: disk-layer counters ({"hits", "misses", "evictions", "writes"})
    #: when the task ran against a persistent cache, else None
    compile_cache_disk: Optional[Dict[str, int]] = None
    #: Chrome trace events captured when SweepTask.trace was set
    trace_events: Optional[List[Dict[str, object]]] = None
    #: aggregate-metrics snapshot of this task's registry (see
    #: SweepTask.metrics); on a crashed task this still carries whatever
    #: was flushed before the failure, so partial telemetry survives
    metrics_delta: Optional[Dict[str, object]] = None
    #: the task's process raised (or died) instead of reporting cleanly
    crashed: bool = False

    @property
    def ok(self) -> bool:
        return self.comparison is not None


class SweepError(RuntimeError):
    """One or more sweep tasks failed after exhausting retries."""

    def __init__(self, failures: List[TaskResult]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"{f.kernel}-{f.block_size} (attempts={f.attempts}): {f.error}"
            for f in self.failures)
        super().__init__(f"{len(self.failures)} sweep task(s) failed: {detail}")


def run_task(task: SweepTask, index: int = 0, attempts: int = 1) -> TaskResult:
    """Execute one comparison with a per-task compile cache.

    With ``task.trace`` set the comparison runs under a fresh
    :class:`~repro.obs.Tracer` (installed for this task only) and the
    captured events ride back on :attr:`TaskResult.trace_events`.

    With ``task.metrics`` set the comparison additionally runs under a
    fresh :class:`~repro.obs.MetricsRegistry`; its snapshot rides back
    on :attr:`TaskResult.metrics_delta`.  If the task raises, the
    partial snapshot is attached to the exception
    (``exc._metrics_delta``) so crash handlers can still report it.
    """
    if not task.metrics:
        return _task_body(task, index, attempts)
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            result = _task_body(task, index, attempts)
    except BaseException as exc:  # noqa: BLE001 — annotate and re-raise
        exc._metrics_delta = registry.snapshot()
        raise
    result.metrics_delta = registry.snapshot()
    return result


def _task_body(task: SweepTask, index: int, attempts: int) -> TaskResult:
    if task.cache_dir is not None:
        cache = CompileCache(disk=task.cache_dir)
    else:
        cache = CompileCache.from_env()
    start = time.perf_counter()
    events: Optional[List[Dict[str, object]]] = None
    if task.trace:
        with use_tracer(Tracer()) as tracer:
            comparison = compare(
                task.builder, task.block_size, grid_dim=task.grid_dim,
                seed=task.seed, config=task.config, machine=task.machine,
                name=task.kernel, cache=cache, collect_ir_stats=True)
            # Counter tracks next to the task's spans in Perfetto.
            bridge_to_tracer(current_registry(), tracer)
        events = list(tracer.events)
    else:
        comparison = compare(
            task.builder, task.block_size, grid_dim=task.grid_dim,
            seed=task.seed, config=task.config, machine=task.machine,
            name=task.kernel, cache=cache, collect_ir_stats=True)
    seconds = time.perf_counter() - start
    record_task_seconds(seconds)
    return TaskResult(
        index=index, kernel=task.kernel, block_size=task.block_size,
        comparison=comparison, attempts=attempts, seconds=seconds,
        compile_cache_hits=cache.hits, compile_cache_misses=cache.misses,
        compile_cache_disk=(cache.disk.counters()
                            if cache.disk is not None else None),
        trace_events=events)


def _sweep_fn(task: SweepTask, ctx) -> TaskResult:
    """Scheduler task adapter: one sweep comparison per scheduler task.

    Metrics stay ``Task.metrics=False`` at the scheduler layer —
    :func:`run_task` manages its own per-task registry (and annotates
    exceptions with the partial snapshot), which keeps the serial and
    pooled paths byte-identical in what they collect.
    """
    return run_task(task, index=ctx.index, attempts=ctx.attempt)


def fold_sweep_metrics(results: Sequence[TaskResult], wall_seconds: float,
                       slot_busy: Optional[Dict[int, float]] = None) -> None:
    """Merge task deltas + sweep counters into the ambient registry.

    Deltas merge in task-index order — the same order the serial path
    produced them in — so an N-worker sweep's merged snapshot is
    bit-identical to the serial run's (modulo wall-clock-valued samples,
    which are nondeterministic in any mode).  Shared by
    :class:`ParallelRunner` and the :mod:`repro.serve` sweep job so a
    sweep's metric families are the same no matter which surface ran it.
    """
    registry = current_registry()
    if not registry.enabled or not results:
        return
    for result in sorted(results, key=lambda r: r.index):
        if result.metrics_delta:
            registry.merge(result.metrics_delta)
    registry.counter(
        "repro_eval_tasks_completed_total",
        "Sweep tasks that produced a comparison"
    ).inc(sum(1 for r in results if r.ok))
    registry.counter(
        "repro_eval_tasks_failed_total",
        "Sweep tasks that failed after exhausting retries"
    ).inc(sum(1 for r in results if not r.ok))
    registry.counter(
        "repro_eval_tasks_retried_total",
        "Extra attempts beyond each task's first"
    ).inc(sum(r.attempts - 1 for r in results))
    registry.counter(
        "repro_eval_tasks_timed_out_total",
        "Task attempts terminated at the wall-clock timeout"
    ).inc(sum(1 for r in results
              if r.error is not None and "timed out" in r.error))
    registry.counter(
        "repro_eval_tasks_crashed_total",
        "Tasks whose process raised or died mid-flight"
    ).inc(sum(1 for r in results if r.crashed))
    if wall_seconds > 0:
        registry.gauge(
            "repro_eval_rows_per_second",
            "Completed sweep tasks per wall-clock second"
        ).set(sum(1 for r in results if r.ok) / wall_seconds)
        utilization = registry.gauge(
            "repro_eval_worker_utilization",
            "Busy seconds / wall seconds, per concurrency slot")
        for slot in sorted(slot_busy or {}):
            utilization.labels(worker=str(slot)).set(
                min(1.0, slot_busy[slot] / wall_seconds))
    # The merged hit ratio, not the last task's.
    update_cache_hit_ratio(registry)


class ParallelRunner:
    """Run :class:`SweepTask` lists with bounded parallelism.

    ``timeout`` is per task attempt, in seconds (``None`` disables it —
    only meaningful with ``workers > 1``, since the serial path cannot
    preempt a running task).  ``recycle`` forwards a
    :class:`~repro.scheduler.RecyclePolicy` to the worker pool
    (irrelevant for ``workers <= 1``).
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES,
                 recycle: RecyclePolicy = NO_RECYCLE) -> None:
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.recycle = recycle
        #: concurrency-slot id -> busy seconds, rebuilt by each run()
        self._slot_busy: Dict[int, float] = {}
        #: repro_sched_* snapshot of the last run()'s pool (worker
        #: lifetimes, recycling, respawns); None before the first run
        self.scheduler_metrics: Optional[Dict[str, object]] = None

    def _fold_metrics(self, results: Sequence[TaskResult],
                      wall_seconds: float) -> None:
        fold_sweep_metrics(results, wall_seconds, self._slot_busy)

    # ---- public API -------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask],
            progress: Optional[ProgressCallback] = None) -> List[TaskResult]:
        """Run every task; results are ordered by task index.

        ``progress`` is called after each terminal result with
        ``(done, total, result)`` — completion order, not index order.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._slot_busy = {}
        start = time.perf_counter()
        total = len(tasks)
        by_index: Dict[int, TaskResult] = {}

        def on_outcome(outcome) -> None:
            # Runs on the scheduler's dispatcher thread, one outcome at
            # a time — no extra synchronization needed here.
            if outcome.ok:
                result = outcome.value
            else:
                task = tasks[outcome.index]
                result = TaskResult(
                    index=outcome.index, kernel=task.kernel,
                    block_size=task.block_size, error=outcome.error,
                    attempts=outcome.attempts, seconds=outcome.seconds,
                    metrics_delta=outcome.metrics_delta,
                    crashed=outcome.crashed)
            by_index[result.index] = result
            if progress is not None:
                progress(len(by_index), total, result)

        scheduler = Scheduler(
            workers=0 if self.workers <= 1 else self.workers,
            timeout=self.timeout, retries=self.retries, recycle=self.recycle)
        with scheduler:
            scheduler.run([Task(_sweep_fn, task) for task in tasks],
                          on_outcome=on_outcome)
        self._slot_busy = dict(scheduler.slot_busy)
        self.scheduler_metrics = scheduler.metrics_snapshot()
        results = [by_index[index] for index in range(total)]
        self._fold_metrics(results, time.perf_counter() - start)
        return results


def run_tasks(tasks: Sequence[SweepTask], workers: int = 1,
              timeout: Optional[float] = None,
              retries: int = DEFAULT_RETRIES,
              progress: Optional[ProgressCallback] = None,
              recycle: RecyclePolicy = NO_RECYCLE) -> List[TaskResult]:
    """Convenience wrapper: ``ParallelRunner(...).run(tasks)``."""
    return ParallelRunner(workers=workers, timeout=timeout,
                          retries=retries, recycle=recycle
                          ).run(tasks, progress=progress)
