"""Parallel sweep engine for the evaluation harness.

Every ``(kernel, block size, config)`` comparison in a figure sweep is
independent — :func:`repro.evaluation.runner.compare` builds fresh
:class:`~repro.kernels.common.KernelCase` objects per call — so
:class:`ParallelRunner` fans them out across worker processes:

* **deterministic ordering** — results come back in task-submission
  order regardless of which worker finishes first, so a parallel sweep
  produces row-for-row identical output to a serial one;
* **fault isolation** — each task runs in its own process with an
  optional wall-clock ``timeout``; a diverging simulation is terminated
  and retried once (fresh process) before being reported as a failure,
  so one bad configuration cannot hang a whole figure;
* **compile caching** — every task uses a :class:`CompileCache`, so the
  ``-O3`` stage runs once per comparison instead of once per arm; with
  :attr:`SweepTask.cache_dir` (or ``REPRO_COMPILE_CACHE`` in the
  environment) the cache is disk-backed and **shared across worker
  processes and sweep repeats** — a warm sweep replays whole pipelines
  instead of compiling.

``workers <= 1`` runs tasks serially in-process (the reference path the
determinism tests compare against); ``workers > 1`` uses one process per
task with at most ``workers`` alive at a time — per-task processes make
timeout enforcement a clean ``terminate()`` instead of a poisoned pool.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import CFMConfig
from repro.kernels.common import KernelCase
from repro.obs import (
    MetricsRegistry,
    Tracer,
    bridge_to_tracer,
    current_registry,
    record_task_seconds,
    update_cache_hit_ratio,
    use as use_tracer,
    use_registry,
)
from repro.simt import MachineConfig

from .runner import Comparison, CompileCache, compare

#: forcibly terminated / crashed tasks are retried this many times
DEFAULT_RETRIES = 1

#: callback invoked after each terminal task result:
#: ``progress(done, total, result)``
ProgressCallback = Callable[[int, int, "TaskResult"], None]


@dataclass(frozen=True)
class SweepTask:
    """One comparison to run: kernel builder + launch configuration."""

    kernel: str
    builder: Callable[..., KernelCase]
    block_size: int
    grid_dim: int = 2
    seed: int = 1234
    config: Optional[CFMConfig] = None
    #: machine model override (warp size, latency tables, executor);
    #: None runs on repro.simt.DEFAULT_CONFIG
    machine: Optional[MachineConfig] = None
    #: capture a repro.obs trace of this task (pass spans, melding
    #: decisions, warp divergence events) into TaskResult.trace_events
    trace: bool = False
    #: directory of the persistent cross-process compile cache; None
    #: falls back to the REPRO_COMPILE_CACHE environment variable
    #: (unset/"off" → per-task in-process cache only)
    cache_dir: Optional[str] = None
    #: collect an aggregate-metrics delta for this task (a fresh
    #: repro.obs.MetricsRegistry installed for the task's duration; its
    #: snapshot rides back on TaskResult.metrics_delta so the parent can
    #: fold worker deltas into one sweep-level registry)
    metrics: bool = False


@dataclass
class TaskResult:
    """Outcome of one :class:`SweepTask` (success or terminal failure)."""

    index: int
    kernel: str
    block_size: int
    comparison: Optional[Comparison] = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    #: disk-layer counters ({"hits", "misses", "evictions", "writes"})
    #: when the task ran against a persistent cache, else None
    compile_cache_disk: Optional[Dict[str, int]] = None
    #: Chrome trace events captured when SweepTask.trace was set
    trace_events: Optional[List[Dict[str, object]]] = None
    #: aggregate-metrics snapshot of this task's registry (see
    #: SweepTask.metrics); on a crashed task this still carries whatever
    #: was flushed before the failure, so partial telemetry survives
    metrics_delta: Optional[Dict[str, object]] = None
    #: the task's process raised (or died) instead of reporting cleanly
    crashed: bool = False

    @property
    def ok(self) -> bool:
        return self.comparison is not None


class SweepError(RuntimeError):
    """One or more sweep tasks failed after exhausting retries."""

    def __init__(self, failures: List[TaskResult]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"{f.kernel}-{f.block_size} (attempts={f.attempts}): {f.error}"
            for f in self.failures)
        super().__init__(f"{len(self.failures)} sweep task(s) failed: {detail}")


def run_task(task: SweepTask, index: int = 0, attempts: int = 1) -> TaskResult:
    """Execute one comparison with a per-task compile cache.

    With ``task.trace`` set the comparison runs under a fresh
    :class:`~repro.obs.Tracer` (installed for this task only) and the
    captured events ride back on :attr:`TaskResult.trace_events`.

    With ``task.metrics`` set the comparison additionally runs under a
    fresh :class:`~repro.obs.MetricsRegistry`; its snapshot rides back
    on :attr:`TaskResult.metrics_delta`.  If the task raises, the
    partial snapshot is attached to the exception
    (``exc._metrics_delta``) so crash handlers can still report it.
    """
    if not task.metrics:
        return _task_body(task, index, attempts)
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            result = _task_body(task, index, attempts)
    except BaseException as exc:  # noqa: BLE001 — annotate and re-raise
        exc._metrics_delta = registry.snapshot()
        raise
    result.metrics_delta = registry.snapshot()
    return result


def _task_body(task: SweepTask, index: int, attempts: int) -> TaskResult:
    if task.cache_dir is not None:
        cache = CompileCache(disk=task.cache_dir)
    else:
        cache = CompileCache.from_env()
    start = time.perf_counter()
    events: Optional[List[Dict[str, object]]] = None
    if task.trace:
        with use_tracer(Tracer()) as tracer:
            comparison = compare(
                task.builder, task.block_size, grid_dim=task.grid_dim,
                seed=task.seed, config=task.config, machine=task.machine,
                name=task.kernel, cache=cache, collect_ir_stats=True)
            # Counter tracks next to the task's spans in Perfetto.
            bridge_to_tracer(current_registry(), tracer)
        events = list(tracer.events)
    else:
        comparison = compare(
            task.builder, task.block_size, grid_dim=task.grid_dim,
            seed=task.seed, config=task.config, machine=task.machine,
            name=task.kernel, cache=cache, collect_ir_stats=True)
    seconds = time.perf_counter() - start
    record_task_seconds(seconds)
    return TaskResult(
        index=index, kernel=task.kernel, block_size=task.block_size,
        comparison=comparison, attempts=attempts, seconds=seconds,
        compile_cache_hits=cache.hits, compile_cache_misses=cache.misses,
        compile_cache_disk=(cache.disk.counters()
                            if cache.disk is not None else None),
        trace_events=events)


def _child_main(task: SweepTask, index: int, attempts: int, conn) -> None:
    """Worker-process entry point: send back a TaskResult, never raise."""
    start = time.perf_counter()
    try:
        result = run_task(task, index=index, attempts=attempts)
    except BaseException as exc:  # noqa: BLE001 — report, don't kill silently
        result = TaskResult(
            index=index, kernel=task.kernel, block_size=task.block_size,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            attempts=attempts, seconds=time.perf_counter() - start,
            # Whatever the task flushed before dying still aggregates —
            # a crashed worker reports partial telemetry, not nothing.
            metrics_delta=getattr(exc, "_metrics_delta", None),
            crashed=True)
    try:
        conn.send(result)
    finally:
        conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ParallelRunner:
    """Run :class:`SweepTask` lists with bounded parallelism.

    ``timeout`` is per task attempt, in seconds (``None`` disables it —
    only meaningful with ``workers > 1``, since the serial path cannot
    preempt a running task).
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES) -> None:
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        #: concurrency-slot id -> busy seconds, rebuilt by each run()
        self._slot_busy: Dict[int, float] = {}

    # ---- serial reference path -------------------------------------------

    def _run_serial(self, tasks: Sequence[SweepTask],
                    progress: Optional[ProgressCallback] = None
                    ) -> List[TaskResult]:
        results: List[TaskResult] = []
        for index, task in enumerate(tasks):
            attempt = 1
            while True:
                start = time.perf_counter()
                try:
                    results.append(run_task(task, index=index, attempts=attempt))
                    break
                except Exception as exc:  # noqa: BLE001
                    if attempt > self.retries:
                        results.append(TaskResult(
                            index=index, kernel=task.kernel,
                            block_size=task.block_size,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=attempt,
                            seconds=time.perf_counter() - start,
                            metrics_delta=getattr(exc, "_metrics_delta",
                                                  None),
                            crashed=True))
                        break
                    attempt += 1
            self._slot_busy[0] = (self._slot_busy.get(0, 0.0)
                                  + results[-1].seconds)
            if progress is not None:
                progress(len(results), len(tasks), results[-1])
        return results

    # ---- process-per-task path -------------------------------------------

    def _run_parallel(self, tasks: Sequence[SweepTask],
                      progress: Optional[ProgressCallback] = None
                      ) -> List[TaskResult]:
        ctx = _mp_context()
        pending: deque = deque(
            (index, task, 1) for index, task in enumerate(tasks))
        #: conn -> (process, index, task, attempt, monotonic start, slot)
        live: Dict[object, Tuple[object, int, SweepTask, int, float, int]] = {}
        results: Dict[int, TaskResult] = {}
        free_slots = list(range(self.workers - 1, -1, -1))

        def settle(result: Optional[TaskResult]) -> None:
            if result is not None:
                results[result.index] = result
                if progress is not None:
                    progress(len(results), len(tasks), result)

        def release(slot: int, started: float) -> None:
            self._slot_busy[slot] = (self._slot_busy.get(slot, 0.0)
                                     + time.monotonic() - started)
            free_slots.append(slot)

        def fail_or_retry(index: int, task: SweepTask, attempt: int,
                          message: str, started: float,
                          crashed: bool = False) -> None:
            if attempt <= self.retries:
                pending.appendleft((index, task, attempt + 1))
            else:
                settle(TaskResult(
                    index=index, kernel=task.kernel,
                    block_size=task.block_size, error=message,
                    attempts=attempt,
                    seconds=time.monotonic() - started,
                    crashed=crashed))

        while pending or live:
            while pending and len(live) < self.workers:
                index, task, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_child_main,
                    args=(task, index, attempt, child_conn),
                    daemon=True)
                process.start()
                child_conn.close()
                live[parent_conn] = (process, index, task, attempt,
                                     time.monotonic(), free_slots.pop())

            # Wake up either when a worker reports or when the earliest
            # deadline expires.
            wait_for: Optional[float] = None
            if self.timeout is not None:
                now = time.monotonic()
                wait_for = max(0.0, min(
                    started + self.timeout - now
                    for (_, _, _, _, started, _) in live.values()))
            ready = _connection_wait(list(live), timeout=wait_for)

            for conn in ready:
                process, index, task, attempt, started, slot = live.pop(conn)
                try:
                    result = conn.recv()
                except (EOFError, OSError):
                    result = None
                conn.close()
                process.join()
                release(slot, started)
                if result is None:
                    fail_or_retry(index, task, attempt,
                                  "worker process died without reporting "
                                  f"(exit code {process.exitcode})", started,
                                  crashed=True)
                elif result.error is not None and attempt <= self.retries:
                    pending.appendleft((index, task, attempt + 1))
                else:
                    settle(result)

            if self.timeout is not None:
                now = time.monotonic()
                for conn in list(live):
                    process, index, task, attempt, started, slot = live[conn]
                    if now - started <= self.timeout:
                        continue
                    del live[conn]
                    process.terminate()
                    process.join()
                    conn.close()
                    release(slot, started)
                    fail_or_retry(
                        index, task, attempt,
                        f"timed out after {self.timeout:g}s", started)

        return [results[index] for index in range(len(tasks))]

    # ---- sweep-level aggregation ------------------------------------------

    def _fold_metrics(self, results: Sequence[TaskResult],
                      wall_seconds: float) -> None:
        """Merge worker deltas + runner counters into the ambient registry.

        Deltas merge in task-index order — the same order the serial
        path produced them in — so an N-worker sweep's merged snapshot
        is bit-identical to the serial run's (modulo wall-clock-valued
        samples, which are nondeterministic in any mode).
        """
        registry = current_registry()
        if not registry.enabled or not results:
            return
        for result in sorted(results, key=lambda r: r.index):
            if result.metrics_delta:
                registry.merge(result.metrics_delta)
        registry.counter(
            "repro_eval_tasks_completed_total",
            "Sweep tasks that produced a comparison"
        ).inc(sum(1 for r in results if r.ok))
        registry.counter(
            "repro_eval_tasks_failed_total",
            "Sweep tasks that failed after exhausting retries"
        ).inc(sum(1 for r in results if not r.ok))
        registry.counter(
            "repro_eval_tasks_retried_total",
            "Extra attempts beyond each task's first"
        ).inc(sum(r.attempts - 1 for r in results))
        registry.counter(
            "repro_eval_tasks_timed_out_total",
            "Task attempts terminated at the wall-clock timeout"
        ).inc(sum(1 for r in results
                  if r.error is not None and "timed out" in r.error))
        registry.counter(
            "repro_eval_tasks_crashed_total",
            "Tasks whose process raised or died mid-flight"
        ).inc(sum(1 for r in results if r.crashed))
        if wall_seconds > 0:
            registry.gauge(
                "repro_eval_rows_per_second",
                "Completed sweep tasks per wall-clock second"
            ).set(sum(1 for r in results if r.ok) / wall_seconds)
            utilization = registry.gauge(
                "repro_eval_worker_utilization",
                "Busy seconds / wall seconds, per concurrency slot")
            for slot in sorted(self._slot_busy):
                utilization.labels(worker=str(slot)).set(
                    min(1.0, self._slot_busy[slot] / wall_seconds))
        # The merged hit ratio, not the last task's.
        update_cache_hit_ratio(registry)

    # ---- public API -------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask],
            progress: Optional[ProgressCallback] = None) -> List[TaskResult]:
        """Run every task; results are ordered by task index.

        ``progress`` is called after each terminal result with
        ``(done, total, result)`` — completion order, not index order.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._slot_busy = {}
        start = time.perf_counter()
        if self.workers <= 1:
            results = self._run_serial(tasks, progress)
        else:
            results = self._run_parallel(tasks, progress)
        self._fold_metrics(results, time.perf_counter() - start)
        return results


def run_tasks(tasks: Sequence[SweepTask], workers: int = 1,
              timeout: Optional[float] = None,
              retries: int = DEFAULT_RETRIES,
              progress: Optional[ProgressCallback] = None) -> List[TaskResult]:
    """Convenience wrapper: ``ParallelRunner(...).run(tasks)``."""
    return ParallelRunner(workers=workers, timeout=timeout,
                          retries=retries).run(tasks, progress=progress)
