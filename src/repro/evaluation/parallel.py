"""Parallel sweep engine for the evaluation harness.

Every ``(kernel, block size, config)`` comparison in a figure sweep is
independent — :func:`repro.evaluation.runner.compare` builds fresh
:class:`~repro.kernels.common.KernelCase` objects per call — so
:class:`ParallelRunner` fans them out across worker processes:

* **deterministic ordering** — results come back in task-submission
  order regardless of which worker finishes first, so a parallel sweep
  produces row-for-row identical output to a serial one;
* **fault isolation** — each task runs in its own process with an
  optional wall-clock ``timeout``; a diverging simulation is terminated
  and retried once (fresh process) before being reported as a failure,
  so one bad configuration cannot hang a whole figure;
* **compile caching** — every task uses a :class:`CompileCache`, so the
  ``-O3`` stage runs once per comparison instead of once per arm; with
  :attr:`SweepTask.cache_dir` (or ``REPRO_COMPILE_CACHE`` in the
  environment) the cache is disk-backed and **shared across worker
  processes and sweep repeats** — a warm sweep replays whole pipelines
  instead of compiling.

``workers <= 1`` runs tasks serially in-process (the reference path the
determinism tests compare against); ``workers > 1`` uses one process per
task with at most ``workers`` alive at a time — per-task processes make
timeout enforcement a clean ``terminate()`` instead of a poisoned pool.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import CFMConfig
from repro.kernels.common import KernelCase
from repro.obs import Tracer, use as use_tracer
from repro.simt import MachineConfig

from .runner import Comparison, CompileCache, compare

#: forcibly terminated / crashed tasks are retried this many times
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class SweepTask:
    """One comparison to run: kernel builder + launch configuration."""

    kernel: str
    builder: Callable[..., KernelCase]
    block_size: int
    grid_dim: int = 2
    seed: int = 1234
    config: Optional[CFMConfig] = None
    #: machine model override (warp size, latency tables, executor);
    #: None runs on repro.simt.DEFAULT_CONFIG
    machine: Optional[MachineConfig] = None
    #: capture a repro.obs trace of this task (pass spans, melding
    #: decisions, warp divergence events) into TaskResult.trace_events
    trace: bool = False
    #: directory of the persistent cross-process compile cache; None
    #: falls back to the REPRO_COMPILE_CACHE environment variable
    #: (unset/"off" → per-task in-process cache only)
    cache_dir: Optional[str] = None


@dataclass
class TaskResult:
    """Outcome of one :class:`SweepTask` (success or terminal failure)."""

    index: int
    kernel: str
    block_size: int
    comparison: Optional[Comparison] = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    #: disk-layer counters ({"hits", "misses", "evictions", "writes"})
    #: when the task ran against a persistent cache, else None
    compile_cache_disk: Optional[Dict[str, int]] = None
    #: Chrome trace events captured when SweepTask.trace was set
    trace_events: Optional[List[Dict[str, object]]] = None

    @property
    def ok(self) -> bool:
        return self.comparison is not None


class SweepError(RuntimeError):
    """One or more sweep tasks failed after exhausting retries."""

    def __init__(self, failures: List[TaskResult]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"{f.kernel}-{f.block_size} (attempts={f.attempts}): {f.error}"
            for f in self.failures)
        super().__init__(f"{len(self.failures)} sweep task(s) failed: {detail}")


def run_task(task: SweepTask, index: int = 0, attempts: int = 1) -> TaskResult:
    """Execute one comparison with a per-task compile cache.

    With ``task.trace`` set the comparison runs under a fresh
    :class:`~repro.obs.Tracer` (installed for this task only) and the
    captured events ride back on :attr:`TaskResult.trace_events`.
    """
    if task.cache_dir is not None:
        cache = CompileCache(disk=task.cache_dir)
    else:
        cache = CompileCache.from_env()
    start = time.perf_counter()
    events: Optional[List[Dict[str, object]]] = None
    if task.trace:
        with use_tracer(Tracer()) as tracer:
            comparison = compare(
                task.builder, task.block_size, grid_dim=task.grid_dim,
                seed=task.seed, config=task.config, machine=task.machine,
                name=task.kernel, cache=cache, collect_ir_stats=True)
        events = list(tracer.events)
    else:
        comparison = compare(
            task.builder, task.block_size, grid_dim=task.grid_dim,
            seed=task.seed, config=task.config, machine=task.machine,
            name=task.kernel, cache=cache, collect_ir_stats=True)
    return TaskResult(
        index=index, kernel=task.kernel, block_size=task.block_size,
        comparison=comparison, attempts=attempts,
        seconds=time.perf_counter() - start,
        compile_cache_hits=cache.hits, compile_cache_misses=cache.misses,
        compile_cache_disk=(cache.disk.counters()
                            if cache.disk is not None else None),
        trace_events=events)


def _child_main(task: SweepTask, index: int, attempts: int, conn) -> None:
    """Worker-process entry point: send back a TaskResult, never raise."""
    start = time.perf_counter()
    try:
        result = run_task(task, index=index, attempts=attempts)
    except BaseException as exc:  # noqa: BLE001 — report, don't kill silently
        result = TaskResult(
            index=index, kernel=task.kernel, block_size=task.block_size,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            attempts=attempts, seconds=time.perf_counter() - start)
    try:
        conn.send(result)
    finally:
        conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ParallelRunner:
    """Run :class:`SweepTask` lists with bounded parallelism.

    ``timeout`` is per task attempt, in seconds (``None`` disables it —
    only meaningful with ``workers > 1``, since the serial path cannot
    preempt a running task).
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES) -> None:
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))

    # ---- serial reference path -------------------------------------------

    def _run_serial(self, tasks: Sequence[SweepTask]) -> List[TaskResult]:
        results: List[TaskResult] = []
        for index, task in enumerate(tasks):
            attempt = 1
            while True:
                start = time.perf_counter()
                try:
                    results.append(run_task(task, index=index, attempts=attempt))
                    break
                except Exception as exc:  # noqa: BLE001
                    if attempt > self.retries:
                        results.append(TaskResult(
                            index=index, kernel=task.kernel,
                            block_size=task.block_size,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=attempt,
                            seconds=time.perf_counter() - start))
                        break
                    attempt += 1
        return results

    # ---- process-per-task path -------------------------------------------

    def _run_parallel(self, tasks: Sequence[SweepTask]) -> List[TaskResult]:
        ctx = _mp_context()
        pending: deque = deque(
            (index, task, 1) for index, task in enumerate(tasks))
        #: conn -> (process, index, task, attempt, monotonic start)
        live: Dict[object, Tuple[object, int, SweepTask, int, float]] = {}
        results: Dict[int, TaskResult] = {}

        def fail_or_retry(index: int, task: SweepTask, attempt: int,
                          message: str, started: float) -> None:
            if attempt <= self.retries:
                pending.appendleft((index, task, attempt + 1))
            else:
                results[index] = TaskResult(
                    index=index, kernel=task.kernel,
                    block_size=task.block_size, error=message,
                    attempts=attempt,
                    seconds=time.monotonic() - started)

        while pending or live:
            while pending and len(live) < self.workers:
                index, task, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_child_main,
                    args=(task, index, attempt, child_conn),
                    daemon=True)
                process.start()
                child_conn.close()
                live[parent_conn] = (process, index, task, attempt,
                                     time.monotonic())

            # Wake up either when a worker reports or when the earliest
            # deadline expires.
            wait_for: Optional[float] = None
            if self.timeout is not None:
                now = time.monotonic()
                wait_for = max(0.0, min(
                    started + self.timeout - now
                    for (_, _, _, _, started) in live.values()))
            ready = _connection_wait(list(live), timeout=wait_for)

            for conn in ready:
                process, index, task, attempt, started = live.pop(conn)
                try:
                    result = conn.recv()
                except (EOFError, OSError):
                    result = None
                conn.close()
                process.join()
                if result is None:
                    fail_or_retry(index, task, attempt,
                                  "worker process died without reporting "
                                  f"(exit code {process.exitcode})", started)
                elif result.error is not None and attempt <= self.retries:
                    pending.appendleft((index, task, attempt + 1))
                else:
                    results[index] = result

            if self.timeout is not None:
                now = time.monotonic()
                for conn in list(live):
                    process, index, task, attempt, started = live[conn]
                    if now - started <= self.timeout:
                        continue
                    del live[conn]
                    process.terminate()
                    process.join()
                    conn.close()
                    fail_or_retry(
                        index, task, attempt,
                        f"timed out after {self.timeout:g}s", started)

        return [results[index] for index in range(len(tasks))]

    # ---- public API -------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List[TaskResult]:
        """Run every task; results are ordered by task index."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers <= 1:
            return self._run_serial(tasks)
        return self._run_parallel(tasks)


def run_tasks(tasks: Sequence[SweepTask], workers: int = 1,
              timeout: Optional[float] = None,
              retries: int = DEFAULT_RETRIES) -> List[TaskResult]:
    """Convenience wrapper: ``ParallelRunner(...).run(tasks)``."""
    return ParallelRunner(workers=workers, timeout=timeout,
                          retries=retries).run(tasks)
