"""Compile-and-run plumbing for the evaluation harness.

``compile_baseline`` reproduces the paper's baseline: hand-written kernel
compiled at ``-O3`` (folding, unrolling, CFG cleanup, if-conversion).
``compile_cfm`` inserts the CFM pass after ``-O3`` and reruns the late
cleanups, exactly as §V-A describes the modified HIPCC pipeline (and as
§IV-G observes, the late if-conversion re-predicates what unpredication
split, so both configurations see the same late passes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import CFMConfig, CFMStats, run_cfm
from repro.ir import verify_function
from repro.kernels.common import KernelCase
from repro.simt import MachineConfig, Metrics, run_kernel
from repro.transforms import (
    eliminate_dead_code,
    optimize,
    simplify_cfg,
    speculate_hammocks,
)


@dataclass
class CompileResult:
    """Timing breakdown of one kernel compilation (Table II raw data)."""

    o3_seconds: float
    cfm_seconds: float = 0.0
    cfm_stats: Optional[CFMStats] = None

    @property
    def total_seconds(self) -> float:
        return self.o3_seconds + self.cfm_seconds


def compile_baseline(case: KernelCase, verify: bool = True) -> CompileResult:
    """``-O3`` pipeline only."""
    start = time.perf_counter()
    optimize(case.function)
    seconds = time.perf_counter() - start
    if verify:
        verify_function(case.function)
    return CompileResult(o3_seconds=seconds)


def compile_cfm(case: KernelCase, config: Optional[CFMConfig] = None,
                verify: bool = True) -> CompileResult:
    """``-O3`` + CFM + late cleanups (§V-A pipeline)."""
    start = time.perf_counter()
    optimize(case.function)
    o3_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stats = run_cfm(case.function, config)
    # The "rest of the compilation flow" — late SimplifyCFG and the
    # aggressive if-conversion that §IV-G notes re-predicates pure
    # unpredicated blocks.
    simplify_cfg(case.function)
    speculate_hammocks(case.function)
    simplify_cfg(case.function)
    eliminate_dead_code(case.function)
    cfm_seconds = time.perf_counter() - start
    if verify:
        verify_function(case.function)
    return CompileResult(o3_seconds=o3_seconds, cfm_seconds=cfm_seconds,
                         cfm_stats=stats)


@dataclass
class RunResult:
    """One kernel execution: metrics + verified outputs."""

    metrics: Metrics
    outputs: Dict[str, List[int]]


def execute(case: KernelCase, seed: int = 1234,
            machine: Optional[MachineConfig] = None,
            check: bool = True) -> RunResult:
    inputs = case.make_buffers(seed)
    outputs, metrics = run_kernel(
        case.module, case.kernel, case.grid_dim, case.block_dim,
        buffers={name: list(data) for name, data in inputs.items()},
        scalars=case.scalars, config=machine)
    if check:
        case.verify_outputs(inputs, outputs)
    return RunResult(metrics=metrics, outputs=outputs)


@dataclass
class Comparison:
    """Baseline-vs-CFM measurement for one kernel configuration."""

    name: str
    block_size: int
    baseline: Metrics
    melded: Metrics
    baseline_compile: CompileResult
    cfm_compile: CompileResult

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.melded.cycles

    @property
    def melds(self) -> int:
        stats = self.cfm_compile.cfm_stats
        return len(stats.melds) if stats else 0


def compare(
    builder: Callable[..., KernelCase],
    block_size: int,
    grid_dim: int = 2,
    seed: int = 1234,
    config: Optional[CFMConfig] = None,
    machine: Optional[MachineConfig] = None,
    name: Optional[str] = None,
) -> Comparison:
    """Build, compile and run one kernel both ways; outputs are verified
    against the kernel's reference — a CFM miscompile fails loudly."""
    base_case = builder(block_size=block_size, grid_dim=grid_dim)
    cfm_case = builder(block_size=block_size, grid_dim=grid_dim)

    base_compile = compile_baseline(base_case)
    cfm_compile = compile_cfm(cfm_case, config)

    base_run = execute(base_case, seed=seed, machine=machine)
    cfm_run = execute(cfm_case, seed=seed, machine=machine)
    assert base_run.outputs == cfm_run.outputs, \
        f"{base_case.name}: CFM changed observable outputs"

    return Comparison(
        name=name or base_case.name,
        block_size=block_size,
        baseline=base_run.metrics,
        melded=cfm_run.metrics,
        baseline_compile=base_compile,
        cfm_compile=cfm_compile,
    )


def geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
