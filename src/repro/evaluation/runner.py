"""Compile-and-run plumbing for the evaluation harness.

``compile_baseline`` reproduces the paper's baseline: hand-written kernel
compiled at ``-O3`` (folding, unrolling, CFG cleanup, if-conversion).
``compile_cfm`` inserts the CFM pass after ``-O3`` and reruns the late
cleanups, exactly as §V-A describes the modified HIPCC pipeline (and as
§IV-G observes, the late if-conversion re-predicates what unpredication
split, so both configurations see the same late passes).

Both compile entry points accept an optional :class:`CompileCache`.  The
cache is keyed on the *content* of the pre-``-O3`` IR (its printed form),
so the two arms of one comparison — which start from identical builder
output — share a single ``-O3`` run: the baseline arm populates the
cache and the CFM arm replays the optimized module from it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import CFMConfig, CFMStats, run_cfm
from repro.ir import print_module, verify_function
from repro.ir.parser import parse_module
from repro.kernels.common import KernelCase
from repro.obs import current_tracer, emit_pass_timing
from repro.simt import MachineConfig, Metrics, run_kernel
from repro.transforms import (
    PassPipeline,
    PassTiming,
    late_pipeline,
    optimize,
)


@dataclass
class _CacheEntry:
    optimized_ir: str  # print_module() of the post-pipeline module
    seconds: float
    timings: List[PassTiming]


class CompileCache:
    """Content-keyed cache of ``-O3`` results.

    Key: ``(pipeline_id, print_module(pre-O3 module))``.  Value: the
    *printed* optimized module (plus the wall-clock seconds and per-pass
    timings of the run that produced it).  Consumers re-parse the text,
    so every hit yields an independent module — entries are never
    aliased into live kernel cases, and storage stays flat text rather
    than deep object graphs.  Printing and parsing round-trip exactly
    (``tests/ir/test_function_module.py``), so a replayed module is
    indistinguishable from a freshly optimized one.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(case: KernelCase, pipeline_id: str = "o3") -> Tuple[str, str]:
        return (pipeline_id, print_module(case.module))

    def lookup(self, key: Tuple[str, str]) -> Optional[Tuple[object, float, List[PassTiming]]]:
        """Return ``(module, seconds, timings)`` for a hit, else None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            module = parse_module(entry.optimized_ir)
        except Exception:
            # Unparseable entry (e.g. an IR construct the printer can
            # express but the parser cannot): treat as a miss and let
            # the caller recompile — identical semantics, just slower.
            self.misses += 1
            return None
        self.hits += 1
        return module, entry.seconds, list(entry.timings)

    def store(self, key: Tuple[str, str], module: object, seconds: float,
              timings: List[PassTiming]) -> None:
        self._entries[key] = _CacheEntry(optimized_ir=print_module(module),
                                         seconds=seconds,
                                         timings=list(timings))


@dataclass
class CompileResult:
    """Timing breakdown of one kernel compilation (Table II raw data)."""

    o3_seconds: float
    cfm_seconds: float = 0.0
    cfm_stats: Optional[CFMStats] = None
    #: the O3 stage was replayed from a :class:`CompileCache`
    o3_cached: bool = False
    #: per-pass executions, in order (O3 fixpoint, then CFM + late cleanups)
    pass_timings: List[PassTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.o3_seconds + self.cfm_seconds


def _run_o3(case: KernelCase, cache: Optional[CompileCache],
            collect_ir_stats: bool) -> Tuple[float, bool, List[PassTiming]]:
    """Run (or replay) the ``-O3`` pipeline on ``case``'s module in place.

    Returns ``(seconds, cached, pass_timings)``.  On a cache hit the
    case's module is swapped for a deep copy of the cached optimized
    module and the *original* run's seconds/timings are reported, so
    aggregate compile-time numbers stay meaningful.
    """
    if cache is not None:
        key = CompileCache.key_for(case)
        hit = cache.lookup(key)
        if hit is not None:
            module, seconds, timings = hit
            case.module = module
            return seconds, True, timings
    start = time.perf_counter()
    pipeline = optimize(case.function, collect_ir_stats=collect_ir_stats)
    seconds = time.perf_counter() - start
    timings = list(pipeline.timings)
    if cache is not None:
        cache.store(key, case.module, seconds, timings)
    return seconds, False, timings


def compile_baseline(case: KernelCase, verify: bool = True,
                     cache: Optional[CompileCache] = None,
                     collect_ir_stats: bool = False) -> CompileResult:
    """``-O3`` pipeline only."""
    seconds, cached, timings = _run_o3(case, cache, collect_ir_stats)
    if verify:
        verify_function(case.function)
    return CompileResult(o3_seconds=seconds, o3_cached=cached,
                         pass_timings=timings)


def compile_cfm(case: KernelCase, config: Optional[CFMConfig] = None,
                verify: bool = True,
                cache: Optional[CompileCache] = None,
                collect_ir_stats: bool = False) -> CompileResult:
    """``-O3`` + CFM + late cleanups (§V-A pipeline)."""
    o3_seconds, cached, timings = _run_o3(case, cache, collect_ir_stats)
    timings = list(timings)

    start = time.perf_counter()
    if collect_ir_stats:
        blocks_before, instrs_before = PassPipeline._ir_size(case.function)
    stats = run_cfm(case.function, config)
    cfm_timing = PassTiming("cfm", stats.seconds, stats.changed)
    if collect_ir_stats:
        cfm_timing.blocks_before = blocks_before
        cfm_timing.instructions_before = instrs_before
        cfm_timing.blocks_after, cfm_timing.instructions_after = \
            PassPipeline._ir_size(case.function)
    timings.append(cfm_timing)
    tracer = current_tracer()
    if tracer.enabled:
        # The CFM stage runs outside a PassPipeline here, so its span is
        # emitted by hand (the pipeline does this for every other pass).
        emit_pass_timing(cfm_timing, tracer)
    late = late_pipeline(collect_ir_stats=collect_ir_stats)
    late.run(case.function)
    timings.extend(late.timings)
    cfm_seconds = time.perf_counter() - start
    if verify:
        verify_function(case.function)
    return CompileResult(o3_seconds=o3_seconds, cfm_seconds=cfm_seconds,
                         cfm_stats=stats, o3_cached=cached,
                         pass_timings=timings)


@dataclass
class RunResult:
    """One kernel execution: metrics + verified outputs."""

    metrics: Metrics
    outputs: Dict[str, List[int]]


def execute(case: KernelCase, seed: int = 1234,
            machine: Optional[MachineConfig] = None,
            check: bool = True,
            trace_label: Optional[str] = None,
            executor: Optional[str] = None) -> RunResult:
    inputs = case.make_buffers(seed)
    outputs, metrics = run_kernel(
        case.module, case.kernel, case.grid_dim, case.block_dim,
        buffers={name: list(data) for name, data in inputs.items()},
        scalars=case.scalars, config=machine, trace_label=trace_label,
        executor=executor)
    if check:
        case.verify_outputs(inputs, outputs)
    return RunResult(metrics=metrics, outputs=outputs)


@dataclass
class Comparison:
    """Baseline-vs-CFM measurement for one kernel configuration."""

    name: str
    block_size: int
    baseline: Metrics
    melded: Metrics
    baseline_compile: CompileResult
    cfm_compile: CompileResult

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.melded.cycles

    @property
    def melds(self) -> int:
        stats = self.cfm_compile.cfm_stats
        return len(stats.melds) if stats else 0


def compare(
    builder: Callable[..., KernelCase],
    block_size: int,
    grid_dim: int = 2,
    seed: int = 1234,
    config: Optional[CFMConfig] = None,
    machine: Optional[MachineConfig] = None,
    name: Optional[str] = None,
    cache: Optional[CompileCache] = None,
    collect_ir_stats: bool = False,
) -> Comparison:
    """Build, compile and run one kernel both ways; outputs are verified
    against the kernel's reference — a CFM miscompile fails loudly.

    With a ``cache``, the ``-O3`` stage runs once: the baseline arm
    populates it and the CFM arm replays the optimized module.
    """
    base_case = builder(block_size=block_size, grid_dim=grid_dim)
    cfm_case = builder(block_size=block_size, grid_dim=grid_dim)
    label = name or base_case.name

    base_compile = compile_baseline(base_case, cache=cache,
                                    collect_ir_stats=collect_ir_stats)
    cfm_compile = compile_cfm(cfm_case, config, cache=cache,
                              collect_ir_stats=collect_ir_stats)

    base_run = execute(base_case, seed=seed, machine=machine,
                       trace_label=f"o3:{label}-{block_size}")
    cfm_run = execute(cfm_case, seed=seed, machine=machine,
                      trace_label=f"cfm:{label}-{block_size}")
    assert base_run.outputs == cfm_run.outputs, \
        f"{base_case.name}: CFM changed observable outputs"

    return Comparison(
        name=name or base_case.name,
        block_size=block_size,
        baseline=base_run.metrics,
        melded=cfm_run.metrics,
        baseline_compile=base_compile,
        cfm_compile=cfm_compile,
    )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean via log-domain summation.

    A naive running product over/underflows on long sweeps, and the old
    empty-input fallback of ``0.0`` silently zeroed GM columns in the
    report — both are hard errors now: empty input and non-positive
    entries raise :class:`ValueError`.
    """
    if not values:
        raise ValueError("geomean() of an empty sequence")
    log_sum = 0.0
    for value in values:
        if value <= 0.0:
            raise ValueError(
                f"geomean() requires positive values, got {value!r}")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))
