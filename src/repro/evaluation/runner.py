"""Compile-and-run plumbing for the evaluation harness.

``compile_baseline`` reproduces the paper's baseline: hand-written kernel
compiled at ``-O3`` (folding, unrolling, CFG cleanup, if-conversion).
``compile_cfm`` inserts the CFM pass after ``-O3`` and reruns the late
cleanups, exactly as §V-A describes the modified HIPCC pipeline (and as
§IV-G observes, the late if-conversion re-predicates what unpredication
split, so both configurations see the same late passes).

Both compile entry points accept an optional
:class:`~repro.compile_cache.CompileCache` (re-exported here).  Keys are
content digests of the pre-pipeline IR's printed form, so the two arms
of one comparison — which start from identical builder output — share a
single ``-O3`` run, and ``compile_cfm`` additionally caches the **full**
``-O3 + CFM + late cleanups`` result under :func:`cfm_pipeline_id` — the
stage that actually dominates compile time (see ``docs/performance.md``).
With a disk-backed cache the whole compile replays across processes and
sweep repeats.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compile_cache import (
    CacheHit,
    CompileCache,
    _machine_from_latency,
    cfm_pipeline_id,
)
from repro.core import CFMConfig, CFMStats, run_cfm
from repro.ir import print_module, verify_function
from repro.kernels.common import KernelCase
from repro.obs import current_tracer, emit_pass_timing, record_pass_seconds
from repro.simt import (
    DEFAULT_CONFIG,
    MachineConfig,
    Metrics,
    lower_symbolic,
    resolve_machine,
    run_kernel,
)
from repro.transforms import (
    PassPipeline,
    PassTiming,
    late_pipeline,
    optimize,
)

__all__ = [
    "CompileCache", "CacheHit", "cfm_pipeline_id",
    "CompileResult", "RunResult", "Comparison",
    "compile_baseline", "compile_cfm", "compare", "execute", "geomean",
]


@dataclass
class CompileResult:
    """Timing breakdown of one kernel compilation (Table II raw data)."""

    o3_seconds: float
    cfm_seconds: float = 0.0
    cfm_stats: Optional[CFMStats] = None
    #: the O3 stage was replayed from a :class:`CompileCache`
    o3_cached: bool = False
    #: the whole O3+CFM+late pipeline was replayed in one lookup
    cfm_cached: bool = False
    #: per-pass executions, in order (O3 fixpoint, then CFM + late cleanups)
    pass_timings: List[PassTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.o3_seconds + self.cfm_seconds


def _run_o3(case: KernelCase, cache: Optional[CompileCache],
            collect_ir_stats: bool, machine=None,
            printed: Optional[str] = None
            ) -> Tuple[float, bool, List[PassTiming]]:
    """Run (or replay) the ``-O3`` pipeline on ``case``'s module in place.

    Returns ``(seconds, cached, pass_timings)``.  On a cache hit the
    case's module is swapped for an independently parsed copy of the
    cached optimized module and the *original* run's seconds/timings are
    reported, so aggregate compile-time numbers stay meaningful.
    ``printed`` lets callers that already printed the pre-O3 module
    (``compile_cfm``'s full-pipeline probe) share that one print.
    """
    key = None
    if cache is not None:
        if printed is None:
            printed = print_module(case.module)
        key = CompileCache.key("o3", printed)
        hit = cache.lookup(key, want_ir_stats=collect_ir_stats,
                           machine=machine)
        if hit is not None:
            case.module = hit.module
            return hit.seconds, True, hit.timings
    start = time.perf_counter()
    pipeline = optimize(case.function, collect_ir_stats=collect_ir_stats)
    seconds = time.perf_counter() - start
    timings = list(pipeline.timings)
    if cache is not None:
        program = (lower_symbolic(case.function, machine.latency)
                   if machine is not None else None)
        cache.store(key, case.module, seconds, timings,
                    ir_stats=collect_ir_stats, program=program,
                    machine=machine)
    return seconds, False, timings


def _hit_result(hit: CacheHit) -> CompileResult:
    return CompileResult(
        o3_seconds=hit.seconds, cfm_seconds=hit.cfm_seconds,
        cfm_stats=hit.cfm_stats, o3_cached=True,
        cfm_cached=hit.cfm_stats is not None, pass_timings=hit.timings)


def compile_baseline(case: KernelCase, verify: bool = True,
                     cache: Optional[CompileCache] = None,
                     collect_ir_stats: bool = False,
                     machine: Optional[MachineConfig] = None,
                     *, latency=None) -> CompileResult:
    """``-O3`` pipeline only.

    ``machine`` (a :class:`~repro.simt.MachineConfig`) makes cache
    entries carry the lowered µop program for that machine, so a warm
    process also skips launch-time lowering; ``latency=`` is the
    deprecated pre-PR-7 spelling.
    """
    machine = _machine_from_latency(machine, latency, "compile_baseline")
    seconds, cached, timings = _run_o3(case, cache, collect_ir_stats,
                                       machine=machine)
    if verify and not cached:
        # Cached entries were verified by the run that produced them and
        # print/parse round-trips exactly; the hot path skips the re-check
        # (difftest/CI verify per pass instead — see docs/difftest.md).
        verify_function(case.function)
    return CompileResult(o3_seconds=seconds, o3_cached=cached,
                         pass_timings=timings)


def compile_cfm(case: KernelCase, config: Optional[CFMConfig] = None,
                verify: bool = True,
                cache: Optional[CompileCache] = None,
                collect_ir_stats: bool = False,
                machine: Optional[MachineConfig] = None,
                *, latency=None) -> CompileResult:
    """``-O3`` + CFM + late cleanups (§V-A pipeline).

    With a cache, the **whole** pipeline result is keyed under
    :func:`cfm_pipeline_id` — profiling shows the CFM stage, not
    ``-O3``, dominates compile time, so a warm process replays melded IR
    (plus its :class:`CFMStats` and lowered program) without running any
    pass.  A full-key miss still falls through to the shared ``"o3"``
    entry before running the pipelines.
    """
    machine = _machine_from_latency(machine, latency, "compile_cfm")
    full_key = None
    printed = None
    if cache is not None:
        printed = print_module(case.module)
        full_key = CompileCache.key(cfm_pipeline_id(config), printed)
        hit = cache.lookup(full_key, want_ir_stats=collect_ir_stats,
                           machine=machine)
        if hit is not None:
            case.module = hit.module
            return _hit_result(hit)
    o3_seconds, cached, timings = _run_o3(case, cache, collect_ir_stats,
                                          printed=printed)
    timings = list(timings)

    start = time.perf_counter()
    if collect_ir_stats:
        blocks_before, instrs_before = PassPipeline._ir_size(case.function)
    stats = run_cfm(case.function, config)
    cfm_timing = PassTiming("cfm", stats.seconds, stats.changed)
    if collect_ir_stats:
        cfm_timing.blocks_before = blocks_before
        cfm_timing.instructions_before = instrs_before
        cfm_timing.blocks_after, cfm_timing.instructions_after = \
            PassPipeline._ir_size(case.function)
    timings.append(cfm_timing)
    tracer = current_tracer()
    if tracer.enabled:
        # The CFM stage runs outside a PassPipeline here, so its span is
        # emitted by hand (the pipeline does this for every other pass).
        emit_pass_timing(cfm_timing, tracer)
    # Same story for the aggregate pass-seconds histogram.
    record_pass_seconds(cfm_timing.name, cfm_timing.seconds)
    late = late_pipeline(collect_ir_stats=collect_ir_stats)
    late.run(case.function)
    timings.extend(late.timings)
    cfm_seconds = time.perf_counter() - start
    if verify:
        verify_function(case.function)
    if cache is not None:
        program = (lower_symbolic(case.function, machine.latency)
                   if machine is not None else None)
        cache.store(full_key, case.module, o3_seconds, timings,
                    ir_stats=collect_ir_stats, program=program,
                    machine=machine, cfm_seconds=cfm_seconds,
                    cfm_stats=stats)
    return CompileResult(o3_seconds=o3_seconds, cfm_seconds=cfm_seconds,
                         cfm_stats=stats, o3_cached=cached,
                         pass_timings=timings)


@dataclass
class RunResult:
    """One kernel execution: metrics + verified outputs."""

    metrics: Metrics
    outputs: Dict[str, List[int]]


def execute(case: KernelCase, seed: int = 1234,
            machine: Optional[MachineConfig] = None,
            check: bool = True,
            trace_label: Optional[str] = None,
            executor: Optional[str] = None) -> RunResult:
    machine = resolve_machine(machine, executor=executor, where="execute")
    inputs = case.make_buffers(seed)
    outputs, metrics = run_kernel(
        case.module, case.kernel, case.grid_dim, case.block_dim,
        buffers={name: list(data) for name, data in inputs.items()},
        scalars=case.scalars, machine=machine, trace_label=trace_label)
    if check:
        case.verify_outputs(inputs, outputs)
    return RunResult(metrics=metrics, outputs=outputs)


@dataclass
class Comparison:
    """Baseline-vs-CFM measurement for one kernel configuration."""

    name: str
    block_size: int
    baseline: Metrics
    melded: Metrics
    baseline_compile: CompileResult
    cfm_compile: CompileResult

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.melded.cycles

    @property
    def melds(self) -> int:
        stats = self.cfm_compile.cfm_stats
        return len(stats.melds) if stats else 0


def compare(
    builder: Callable[..., KernelCase],
    block_size: int,
    grid_dim: int = 2,
    seed: int = 1234,
    config: Optional[CFMConfig] = None,
    machine: Optional[MachineConfig] = None,
    name: Optional[str] = None,
    cache: Optional[CompileCache] = None,
    collect_ir_stats: bool = False,
) -> Comparison:
    """Build, compile and run one kernel both ways; outputs are verified
    against the kernel's reference — a CFM miscompile fails loudly.

    With a ``cache``, a cold comparison runs ``-O3`` once (the baseline
    arm populates it, the CFM arm replays it before melding) and a warm
    one — same process or, with a disk-backed cache, any later process —
    replays both arms outright, lowered µop programs included.
    """
    base_case = builder(block_size=block_size, grid_dim=grid_dim)
    cfm_case = builder(block_size=block_size, grid_dim=grid_dim)
    label = name or base_case.name
    machine = machine if machine is not None else DEFAULT_CONFIG

    base_compile = compile_baseline(base_case, cache=cache,
                                    collect_ir_stats=collect_ir_stats,
                                    machine=machine)
    cfm_compile = compile_cfm(cfm_case, config, cache=cache,
                              collect_ir_stats=collect_ir_stats,
                              machine=machine)

    base_run = execute(base_case, seed=seed, machine=machine,
                       trace_label=f"o3:{label}-{block_size}")
    cfm_run = execute(cfm_case, seed=seed, machine=machine,
                      trace_label=f"cfm:{label}-{block_size}")
    assert base_run.outputs == cfm_run.outputs, \
        f"{base_case.name}: CFM changed observable outputs"

    return Comparison(
        name=name or base_case.name,
        block_size=block_size,
        baseline=base_run.metrics,
        melded=cfm_run.metrics,
        baseline_compile=base_compile,
        cfm_compile=cfm_compile,
    )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean via log-domain summation.

    A naive running product over/underflows on long sweeps, and the old
    empty-input fallback of ``0.0`` silently zeroed GM columns in the
    report — both are hard errors now: empty input and non-positive
    entries raise :class:`ValueError`.
    """
    if not values:
        raise ValueError("geomean() of an empty sequence")
    log_sum = 0.0
    for value in values:
        if value <= 0.0:
            raise ValueError(
                f"geomean() requires positive values, got {value!r}")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))
