"""Live sweep progress reporting.

:class:`ProgressLine` is a :data:`~repro.evaluation.parallel.ProgressCallback`
that repaints one stderr status line per terminal task result::

    figure7  12/40 (30%)  2.1 rows/s  eta 13s  [sb2-128]

It writes to stderr (never stdout — sweeps pipe their tables) and only
uses carriage-return repainting when the stream is a TTY; on a plain
pipe each update is its own line so CI logs stay readable.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressLine"]


def _format_eta(seconds: float) -> str:
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressLine:
    """Render sweep progress to ``stream`` as tasks complete.

    Pass an instance as the ``progress=`` argument of
    :meth:`ParallelRunner.run <repro.evaluation.parallel.ParallelRunner.run>`
    (or :func:`~repro.evaluation.experiments.run_sweep`).  The callable
    contract is ``(done, total, result)``; the rate/ETA estimate uses
    wall time since construction, so build the instance just before the
    sweep starts.
    """

    def __init__(self, label: str = "sweep",
                 stream: Optional[TextIO] = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        self._last_len = 0

    def __call__(self, done: int, total: int, result) -> None:
        elapsed = time.monotonic() - self._start
        rate = done / elapsed if elapsed > 0 else 0.0
        pct = 100.0 * done / total if total else 100.0
        line = f"{self.label}  {done}/{total} ({pct:.0f}%)"
        if rate > 0:
            line += f"  {rate:.1f} rows/s"
            if done < total:
                line += f"  eta {_format_eta((total - done) / rate)}"
        tag = f"{result.kernel}-{result.block_size}"
        if result.error is not None:
            tag += " FAILED"
        line += f"  [{tag}]"
        self._write(line, final=done >= total)

    def _write(self, line: str, final: bool) -> None:
        stream = self.stream
        if stream.isatty():
            # Repaint in place, blanking any leftover tail.
            pad = " " * max(0, self._last_len - len(line))
            stream.write("\r" + line + pad)
            if final:
                stream.write("\n")
            self._last_len = len(line)
        else:
            stream.write(line + "\n")
        stream.flush()
