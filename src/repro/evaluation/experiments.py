"""Experiment drivers: one function per table/figure of the paper.

Every function returns plain data rows (dataclasses) so tests can assert
on shapes and the benchmark harness can format them.  Input sizes are
scaled down from the paper's 2^20–2^28 elements (see DESIGN.md §2) but
the block-size sweeps match the paper's structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.divergence import compute_divergence
from repro.baselines import fuse_branches, merge_tails
from repro.core import CFMConfig, run_cfm
from repro.ir import verify_function
from repro.kernels import ALL_BUILDERS, REAL_WORLD_BUILDERS, SYNTHETIC_BUILDERS
from repro.kernels.common import KernelCase
from repro.kernels.patterns import PATTERN_BUILDERS
from repro.simt import MachineConfig
from repro.transforms import (
    eliminate_dead_code,
    optimize,
    simplify_cfg,
    speculate_hammocks,
)

from repro.obs import current_registry

from .parallel import (
    ParallelRunner,
    ProgressCallback,
    SweepError,
    SweepTask,
    TaskResult,
)
from .runner import Comparison, compare, compile_baseline, compile_cfm, execute, geomean
from .trace import SweepTraceCollector

#: block-size sweeps (paper §VI-A treats block size as exogenous)
SYNTHETIC_BLOCK_SIZES: List[int] = [32, 64, 128]
REAL_BLOCK_SIZES: Dict[str, List[int]] = {
    "LUD": [16, 32, 64, 128],
    "BIT": [32, 64, 128],
    "DCT": [64, 128, 256],
    "MS": [32, 64, 128],
    "PCM": [16, 32, 64],
}
DEFAULT_GRID_DIM = 2
DEFAULT_SEED = 20220402  # CGO 2022 camera-ready date


@dataclass
class SpeedupRow:
    """One bar of Figure 7/8."""

    kernel: str
    block_size: int
    speedup: float
    baseline_cycles: int
    cfm_cycles: int
    melds: int
    comparison: Comparison

    @property
    def label(self) -> str:
        return f"{self.kernel}-{self.block_size}"


def run_sweep(
    builders: Dict[str, Callable[..., KernelCase]],
    block_sizes: Dict[str, List[int]],
    grid_dim: int = DEFAULT_GRID_DIM,
    seed: int = DEFAULT_SEED,
    config: Optional[CFMConfig] = None,
    machine: Optional[MachineConfig] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    trace: Optional[SweepTraceCollector] = None,
    trace_section: str = "sweep",
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[SpeedupRow]:
    """Run every (kernel, block size) comparison through the sweep engine.

    ``workers > 1`` fans tasks across a process pool (see
    ``repro.evaluation.parallel``); results are ordered identically to
    the serial run.  A failed task — after its retry — raises
    :class:`SweepError` rather than silently dropping a figure row.

    ``cache_dir`` points every task at one persistent compile cache
    (cross-process; see ``repro.compile_cache``), so repeated sweeps
    replay compilation instead of re-running it.  ``None`` defers to the
    ``REPRO_COMPILE_CACHE`` environment variable.

    When a ``trace`` collector is attached, its ``policy`` selects which
    tasks additionally capture Chrome trace events ("first" = the first
    block size of each kernel, "all", or "off"); captured events are
    merged into the collector's Perfetto-loadable ``traceEvents``.

    ``progress`` (e.g. a :class:`~repro.evaluation.progress.ProgressLine`)
    is called after each terminal task with ``(done, total, result)``.
    When the ambient :func:`~repro.obs.current_registry` is enabled,
    every task collects an aggregate-metrics delta and the runner folds
    them into that registry.
    """
    policy = trace.policy if trace is not None else "off"
    collect = current_registry().enabled
    tasks = [SweepTask(kernel=name, builder=builder, block_size=block_size,
                       grid_dim=grid_dim, seed=seed, config=config,
                       machine=machine, cache_dir=cache_dir,
                       trace=(policy == "all"
                              or (policy == "first" and position == 0)),
                       metrics=collect)
             for name, builder in builders.items()
             for position, block_size in enumerate(block_sizes[name])]
    results = ParallelRunner(workers=workers, timeout=timeout).run(
        tasks, progress=progress)
    if trace is not None:
        trace.record(trace_section, results)
    failures = [r for r in results if not r.ok]
    if failures:
        raise SweepError(failures)
    return [_speedup_row(result) for result in results]


def _speedup_row(result: TaskResult) -> SpeedupRow:
    comparison = result.comparison
    return SpeedupRow(
        kernel=result.kernel,
        block_size=result.block_size,
        speedup=comparison.speedup,
        baseline_cycles=comparison.baseline.cycles,
        cfm_cycles=comparison.melded.cycles,
        melds=comparison.melds,
        comparison=comparison,
    )


# ---- Figure 7: synthetic speedups ---------------------------------------------


def figure7(seed: int = DEFAULT_SEED,
            block_sizes: Optional[List[int]] = None,
            workers: int = 1,
            timeout: Optional[float] = None,
            trace: Optional[SweepTraceCollector] = None,
            builders: Optional[Dict[str, Callable[..., KernelCase]]] = None,
            machine: Optional[MachineConfig] = None,
            cache_dir: Optional[str] = None,
            progress: Optional[ProgressCallback] = None,
            ) -> Tuple[List[SpeedupRow], float]:
    """Synthetic benchmark speedups and their geomean (paper: 1.32×)."""
    sizes = block_sizes or SYNTHETIC_BLOCK_SIZES
    selected = builders if builders is not None else SYNTHETIC_BUILDERS
    rows = run_sweep(selected, {n: sizes for n in selected},
                     seed=seed, machine=machine, workers=workers,
                     timeout=timeout, trace=trace, trace_section="figure7",
                     cache_dir=cache_dir, progress=progress)
    return rows, geomean([r.speedup for r in rows])


# ---- Figure 8: real-world speedups -----------------------------------------------


@dataclass
class Figure8Result:
    rows: List[SpeedupRow]
    geomean_all: float
    geomean_best: float
    #: per kernel, the block size whose *baseline* runtime is best ('+')
    best_baseline_block: Dict[str, int]


def figure8(seed: int = DEFAULT_SEED,
            block_sizes: Optional[Dict[str, List[int]]] = None,
            workers: int = 1,
            timeout: Optional[float] = None,
            trace: Optional[SweepTraceCollector] = None,
            builders: Optional[Dict[str, Callable[..., KernelCase]]] = None,
            machine: Optional[MachineConfig] = None,
            cache_dir: Optional[str] = None,
            progress: Optional[ProgressCallback] = None,
            ) -> Figure8Result:
    """Real-benchmark speedups, geomean, and the paper's '+'-marked
    best-baseline-block-size analysis (paper: GM 1.15×, GM-best higher)."""
    sizes = block_sizes or REAL_BLOCK_SIZES
    selected = builders if builders is not None else REAL_WORLD_BUILDERS
    rows = run_sweep(selected, {n: sizes[n] for n in selected}, seed=seed,
                     machine=machine, workers=workers, timeout=timeout,
                     trace=trace, trace_section="figure8",
                     cache_dir=cache_dir, progress=progress)

    best_block: Dict[str, int] = {}
    for kernel in {r.kernel for r in rows}:
        kernel_rows = [r for r in rows if r.kernel == kernel]
        # Normalize by block size: cycles per element would differ across
        # block sizes because input size scales with block size here, so
        # compare cycles per thread.
        best = min(kernel_rows,
                   key=lambda r: r.baseline_cycles / (r.block_size * DEFAULT_GRID_DIM))
        best_block[kernel] = best.block_size

    best_rows = [r for r in rows if best_block[r.kernel] == r.block_size]
    return Figure8Result(
        rows=rows,
        geomean_all=geomean([r.speedup for r in rows]),
        geomean_best=geomean([r.speedup for r in best_rows]),
        best_baseline_block=best_block,
    )


# ---- Figures 9 & 10: ALU utilization & memory counters -----------------------------


@dataclass
class CounterRow:
    kernel: str
    block_size: int
    baseline_alu_utilization: float
    cfm_alu_utilization: float
    normalized_vector_memory: float
    normalized_shared_memory: float
    normalized_flat_memory: float


def best_improvement_rows(rows: List[SpeedupRow]) -> List[SpeedupRow]:
    """Per kernel, the block size where CFM improves the most (§VI-C)."""
    chosen: Dict[str, SpeedupRow] = {}
    for row in rows:
        if row.kernel not in chosen or row.speedup > chosen[row.kernel].speedup:
            chosen[row.kernel] = row
    return [chosen[name] for name in sorted(chosen)]


def counters(rows: List[SpeedupRow]) -> List[CounterRow]:
    """Figures 9 and 10 for the given (already best-selected) rows."""
    result = []
    for row in rows:
        base = row.comparison.baseline
        cfm = row.comparison.melded

        def normalized(cfm_count: int, base_count: int) -> float:
            if base_count == 0:
                return 1.0 if cfm_count == 0 else float("inf")
            return cfm_count / base_count

        result.append(CounterRow(
            kernel=row.kernel,
            block_size=row.block_size,
            baseline_alu_utilization=base.alu_utilization,
            cfm_alu_utilization=cfm.alu_utilization,
            normalized_vector_memory=normalized(cfm.vector_memory_issues,
                                                base.vector_memory_issues),
            normalized_shared_memory=normalized(cfm.shared_memory_issues,
                                                base.shared_memory_issues),
            normalized_flat_memory=normalized(cfm.flat_memory_issues,
                                              base.flat_memory_issues),
        ))
    return result


def figures9_and_10(rows: Optional[List[SpeedupRow]] = None,
                    seed: int = DEFAULT_SEED,
                    workers: int = 1) -> List[CounterRow]:
    if rows is None:
        synthetic, _ = figure7(seed=seed, workers=workers)
        real = figure8(seed=seed, workers=workers).rows
        rows = synthetic + real
    return counters(best_improvement_rows(rows))


# ---- Table I: capability matrix ------------------------------------------------------


@dataclass
class CapabilityRow:
    pattern: str
    technique: str
    divergent_branches_before: int
    divergent_branches_after: int
    outputs_correct: bool

    @property
    def melds(self) -> bool:
        """The technique reduced tid-dependent divergence."""
        return self.divergent_branches_after < self.divergent_branches_before


TECHNIQUES: Dict[str, Callable] = {}


def _apply_tail_merging(function) -> None:
    merge_tails(function)


def _apply_branch_fusion(function) -> None:
    fuse_branches(function)


def _apply_cfm(function) -> None:
    run_cfm(function)


TECHNIQUES.update({
    "tail-merging": _apply_tail_merging,
    "branch-fusion": _apply_branch_fusion,
    "cfm": _apply_cfm,
})


def table1(seed: int = DEFAULT_SEED) -> List[CapabilityRow]:
    """Which technique melds which pattern (Table I)."""
    rows: List[CapabilityRow] = []
    for pattern_name, builder in PATTERN_BUILDERS.items():
        reference_case = builder()
        optimize(reference_case.function)
        reference = execute(reference_case, seed=seed)
        before = len(compute_divergence(reference_case.function)
                     .divergent_branch_blocks)
        for technique_name, technique in TECHNIQUES.items():
            case = builder()
            optimize(case.function)
            technique(case.function)
            simplify_cfg(case.function)
            speculate_hammocks(case.function)
            simplify_cfg(case.function)
            eliminate_dead_code(case.function)
            verify_function(case.function)
            after = len(compute_divergence(case.function).divergent_branch_blocks)
            run = execute(case, seed=seed)
            rows.append(CapabilityRow(
                pattern=pattern_name,
                technique=technique_name,
                divergent_branches_before=before,
                divergent_branches_after=after,
                outputs_correct=(run.outputs == reference.outputs),
            ))
    return rows


# ---- Table II: compile time -----------------------------------------------------------


@dataclass
class CompileTimeRow:
    kernel: str
    o3_seconds: float
    cfm_seconds: float

    @property
    def normalized(self) -> float:
        """CFM-enabled compile time over the O3 baseline (Table II)."""
        if self.o3_seconds == 0:
            return 1.0
        return self.cfm_seconds / self.o3_seconds


def table2(block_size: int = 32, grid_dim: int = DEFAULT_GRID_DIM,
           repeats: int = 3) -> List[CompileTimeRow]:
    """Average compile time with and without CFM for the real kernels."""
    rows: List[CompileTimeRow] = []
    for name, builder in REAL_WORLD_BUILDERS.items():
        o3_total = 0.0
        cfm_total = 0.0
        for _ in range(repeats):
            base_case = builder(block_size=block_size, grid_dim=grid_dim)
            o3_total += compile_baseline(base_case).total_seconds
            cfm_case = builder(block_size=block_size, grid_dim=grid_dim)
            cfm_total += compile_cfm(cfm_case).total_seconds
        rows.append(CompileTimeRow(
            kernel=name,
            o3_seconds=o3_total / repeats,
            cfm_seconds=cfm_total / repeats,
        ))
    return rows
