"""Structured sweep traces: machine-readable observability for the
evaluation harness.

Two artifacts:

* **pass traces** — JSON-lines of per-pass events (name, seconds,
  changed, IR block/instruction counts before/after), produced from
  :class:`~repro.transforms.pass_manager.PassTiming` lists (the event
  shape lives in :mod:`repro.obs.passes`; this module re-exports it);
* **sweep traces** — one ``sweep_trace.json`` per harness run: for every
  ``(kernel, block size)`` configuration, the wall-clock cost, compile
  breakdown (including cache hits), per-pass events for both arms, and
  the full serialized metrics of both runs.  Written alongside
  ``report.txt`` so perf regressions between PRs are diffable.

Schema v2 additionally embeds a top-level ``traceEvents`` list — the
merged Chrome trace events of every traced task (pass spans, melding
decisions, warp divergence timelines).  Because Perfetto ignores unknown
top-level keys, a v2 ``sweep_trace.json`` loads directly in
``ui.perfetto.dev`` / ``chrome://tracing`` *and* stays a structured
sweep record; ``python -m repro.obs report sweep_trace.json`` renders
its divergence heatmaps.

Schema v3 adds a top-level ``"metrics"`` key: the aggregate-metrics
snapshot (:meth:`repro.obs.MetricsRegistry.snapshot`) of the whole
harness run — compile-cache hit rates, per-pass latency histograms,
divergence distributions, task throughput — folded across every worker
process.  ``python -m repro.obs metrics sweep_trace.json`` renders it
as Prometheus text or JSON.  :func:`load_sweep_trace` reads v1, v2 and
v3 files (older files load with ``"metrics": None``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs import COMPILE_PID, SIM_PID_BASE
from repro.obs import pass_timing_events as _pass_timing_events
from repro.transforms import PassTiming

from .parallel import TaskResult

#: bump when the trace layout changes; consumers key off this
SWEEP_TRACE_SCHEMA = "repro.evaluation.sweep_trace/v3"
#: v2 layout (traceEvents but no aggregate metrics); still readable
SWEEP_TRACE_SCHEMA_V2 = "repro.evaluation.sweep_trace/v2"
#: v1 layout (no embedded traceEvents); still readable
SWEEP_TRACE_SCHEMA_V1 = "repro.evaluation.sweep_trace/v1"

#: task-tracing policies for sweeps: nothing, the first block size of
#: each kernel (bounded file size), or every task
TRACE_EVENT_POLICIES = ("off", "first", "all")


def pass_trace_events(timings: Sequence[PassTiming]) -> List[Dict[str, object]]:
    """Serialize pass timings as JSON-ready event dicts.

    Thin alias of :func:`repro.obs.pass_timing_events`, the single
    implementation of the event shape.
    """
    return _pass_timing_events(timings)


def write_pass_trace_jsonl(timings: Sequence[PassTiming], path: str) -> None:
    """Write one JSON object per pass execution (JSON-lines)."""
    with open(path, "w") as handle:
        for event in pass_trace_events(timings):
            handle.write(json.dumps(event) + "\n")


def task_entry(result: TaskResult) -> Dict[str, object]:
    """One sweep-trace entry for a finished (or failed) task."""
    entry: Dict[str, object] = {
        "kernel": result.kernel,
        "block_size": result.block_size,
        "index": result.index,
        "ok": result.ok,
        "attempts": result.attempts,
        "seconds": round(result.seconds, 6),
        "compile_cache": {"hits": result.compile_cache_hits,
                          "misses": result.compile_cache_misses},
    }
    if result.compile_cache_disk is not None:
        entry["compile_cache"]["disk"] = dict(result.compile_cache_disk)
    if not result.ok:
        entry["error"] = result.error
        return entry
    comparison = result.comparison
    entry.update({
        "speedup": comparison.speedup,
        "melds": comparison.melds,
        "baseline_cycles": comparison.baseline.cycles,
        "cfm_cycles": comparison.melded.cycles,
        "compile": {
            "baseline": {
                "o3_seconds": comparison.baseline_compile.o3_seconds,
                "o3_cached": comparison.baseline_compile.o3_cached,
                "passes": pass_trace_events(
                    comparison.baseline_compile.pass_timings),
            },
            "cfm": {
                "o3_seconds": comparison.cfm_compile.o3_seconds,
                "o3_cached": comparison.cfm_compile.o3_cached,
                "cfm_cached": comparison.cfm_compile.cfm_cached,
                "cfm_seconds": comparison.cfm_compile.cfm_seconds,
                "passes": pass_trace_events(
                    comparison.cfm_compile.pass_timings),
            },
        },
        "baseline_metrics": comparison.baseline.as_dict(),
        "cfm_metrics": comparison.melded.as_dict(),
    })
    return entry


@dataclass
class SweepTraceCollector:
    """Accumulates per-task entries across one harness invocation.

    Tasks run under their own per-process tracer (each starting at
    ``COMPILE_PID`` / ``SIM_PID_BASE``), so when a traced task's events
    arrive the collector rebases them onto collector-unique pids and
    prefixes every process name with ``<kernel>-<block>:`` — the merged
    ``traceEvents`` list stays one consistent Perfetto timeline no
    matter how many tasks contributed.
    """

    workers: int = 1
    timeout: Optional[float] = None
    #: which tasks run under a tracer — one of TRACE_EVENT_POLICIES
    #: ("first" = the first block size of each kernel; bounds file size)
    policy: str = "first"
    sections: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    #: merged Chrome trace events of every traced task (pid-rebased)
    events: List[Dict[str, object]] = field(default_factory=list)
    #: aggregate-metrics snapshot of the run (schema v3); set by the
    #: harness after all sections are recorded, None when metrics were
    #: not collected
    metrics: Optional[Dict[str, object]] = None
    _next_pid: int = SIM_PID_BASE

    def __post_init__(self) -> None:
        if self.policy not in TRACE_EVENT_POLICIES:
            raise ValueError(
                f"unknown trace-events policy {self.policy!r}; expected "
                f"one of {TRACE_EVENT_POLICIES}")

    def record(self, section: str, results: Sequence[TaskResult]) -> None:
        self.sections.setdefault(section, []).extend(
            task_entry(result) for result in results)
        for result in results:
            if result.trace_events:
                self._merge_task_events(result)

    def _merge_task_events(self, result: TaskResult) -> None:
        label = f"{result.kernel}-{result.block_size}"
        pid_map: Dict[int, int] = {}
        named: set = set()
        for event in result.trace_events:
            pid = event.get("pid", 0)
            if pid not in pid_map:
                pid_map[pid] = self._next_pid
                self._next_pid += 1
            rebased = dict(event)
            rebased["pid"] = pid_map[pid]
            if rebased.get("ph") == "M" and rebased.get("name") == "process_name":
                args = dict(rebased.get("args", {}))
                args["name"] = f"{label}:{args.get('name', '')}"
                rebased["args"] = args
                named.add(rebased["pid"])
            self.events.append(rebased)
        # The compile pid never names itself; synthesize its metadata so
        # Perfetto labels the track.
        for old_pid, new_pid in pid_map.items():
            if new_pid in named:
                continue
            name = "compile" if old_pid == COMPILE_PID else f"pid{old_pid}"
            self.events.append({
                "name": "process_name", "ph": "M", "ts": 0,
                "pid": new_pid, "tid": 0,
                "args": {"name": f"{label}:{name}"}})

    @property
    def task_count(self) -> int:
        return sum(len(entries) for entries in self.sections.values())

    @property
    def traced_pid_count(self) -> int:
        """How many task pids have been merged into :attr:`events`."""
        return self._next_pid - SIM_PID_BASE

    def payload(self) -> Dict[str, object]:
        return {
            "schema": SWEEP_TRACE_SCHEMA,
            "workers": self.workers,
            "timeout": self.timeout,
            "task_count": self.task_count,
            "sections": self.sections,
            "metrics": self.metrics,
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.payload(), handle, indent=2)
            handle.write("\n")


def load_sweep_trace(path: str) -> Dict[str, object]:
    """Read a ``sweep_trace.json`` of any known schema version.

    Older files are upgraded in memory: the returned dict always carries
    a ``traceEvents`` list (empty for v1) and a ``metrics`` key (None
    for v1/v2), and reports the file's original schema under
    ``"schema"``.
    """
    with open(path) as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if schema not in (SWEEP_TRACE_SCHEMA, SWEEP_TRACE_SCHEMA_V2,
                      SWEEP_TRACE_SCHEMA_V1):
        raise ValueError(
            f"{path}: unknown sweep-trace schema {schema!r} (readable: "
            f"{SWEEP_TRACE_SCHEMA_V1}, {SWEEP_TRACE_SCHEMA_V2}, "
            f"{SWEEP_TRACE_SCHEMA})")
    data.setdefault("traceEvents", [])
    data.setdefault("sections", {})
    data.setdefault("metrics", None)
    return data
