"""Structured sweep traces: machine-readable observability for the
evaluation harness.

Two artifacts:

* **pass traces** — JSON-lines of per-pass events (name, seconds,
  changed, IR block/instruction counts before/after), produced from
  :class:`~repro.transforms.pass_manager.PassTiming` lists;
* **sweep traces** — one ``sweep_trace.json`` per harness run: for every
  ``(kernel, block size)`` configuration, the wall-clock cost, compile
  breakdown (including cache hits), per-pass events for both arms, and
  the full serialized metrics of both runs.  Written alongside
  ``report.txt`` so perf regressions between PRs are diffable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.transforms import PassTiming

from .parallel import TaskResult

#: bump when the trace layout changes; consumers key off this
SWEEP_TRACE_SCHEMA = "repro.evaluation.sweep_trace/v1"


def pass_trace_events(timings: Sequence[PassTiming]) -> List[Dict[str, object]]:
    """Serialize pass timings as JSON-ready event dicts."""
    return [t.as_dict() for t in timings]


def write_pass_trace_jsonl(timings: Sequence[PassTiming], path: str) -> None:
    """Write one JSON object per pass execution (JSON-lines)."""
    with open(path, "w") as handle:
        for event in pass_trace_events(timings):
            handle.write(json.dumps(event) + "\n")


def task_entry(result: TaskResult) -> Dict[str, object]:
    """One sweep-trace entry for a finished (or failed) task."""
    entry: Dict[str, object] = {
        "kernel": result.kernel,
        "block_size": result.block_size,
        "index": result.index,
        "ok": result.ok,
        "attempts": result.attempts,
        "seconds": round(result.seconds, 6),
        "compile_cache": {"hits": result.compile_cache_hits,
                          "misses": result.compile_cache_misses},
    }
    if not result.ok:
        entry["error"] = result.error
        return entry
    comparison = result.comparison
    entry.update({
        "speedup": comparison.speedup,
        "melds": comparison.melds,
        "baseline_cycles": comparison.baseline.cycles,
        "cfm_cycles": comparison.melded.cycles,
        "compile": {
            "baseline": {
                "o3_seconds": comparison.baseline_compile.o3_seconds,
                "o3_cached": comparison.baseline_compile.o3_cached,
                "passes": pass_trace_events(
                    comparison.baseline_compile.pass_timings),
            },
            "cfm": {
                "o3_seconds": comparison.cfm_compile.o3_seconds,
                "o3_cached": comparison.cfm_compile.o3_cached,
                "cfm_seconds": comparison.cfm_compile.cfm_seconds,
                "passes": pass_trace_events(
                    comparison.cfm_compile.pass_timings),
            },
        },
        "baseline_metrics": comparison.baseline.as_dict(),
        "cfm_metrics": comparison.melded.as_dict(),
    })
    return entry


@dataclass
class SweepTraceCollector:
    """Accumulates per-task entries across one harness invocation."""

    workers: int = 1
    timeout: Optional[float] = None
    sections: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)

    def record(self, section: str, results: Sequence[TaskResult]) -> None:
        self.sections.setdefault(section, []).extend(
            task_entry(result) for result in results)

    @property
    def task_count(self) -> int:
        return sum(len(entries) for entries in self.sections.values())

    def payload(self) -> Dict[str, object]:
        return {
            "schema": SWEEP_TRACE_SCHEMA,
            "workers": self.workers,
            "timeout": self.timeout,
            "task_count": self.task_count,
            "sections": self.sections,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.payload(), handle, indent=2)
            handle.write("\n")
