"""Evaluation harness regenerating every table and figure of the paper."""

from .runner import (
    CacheHit,
    Comparison,
    CompileCache,
    CompileResult,
    RunResult,
    cfm_pipeline_id,
    compare,
    compile_baseline,
    compile_cfm,
    execute,
    geomean,
)
from .parallel import (
    ParallelRunner,
    ProgressCallback,
    SweepError,
    SweepTask,
    TaskResult,
    fold_sweep_metrics,
    run_task,
    run_tasks,
)
from .progress import ProgressLine
from .trace import (
    SWEEP_TRACE_SCHEMA,
    SWEEP_TRACE_SCHEMA_V1,
    SWEEP_TRACE_SCHEMA_V2,
    SweepTraceCollector,
    TRACE_EVENT_POLICIES,
    load_sweep_trace,
    pass_trace_events,
    write_pass_trace_jsonl,
)
from .experiments import (
    CapabilityRow,
    CompileTimeRow,
    CounterRow,
    DEFAULT_GRID_DIM,
    DEFAULT_SEED,
    Figure8Result,
    REAL_BLOCK_SIZES,
    SYNTHETIC_BLOCK_SIZES,
    SpeedupRow,
    best_improvement_rows,
    counters,
    figure7,
    figure8,
    figures9_and_10,
    run_sweep,
    table1,
    table2,
)
from .reporting import (
    format_counters,
    format_figure8,
    format_speedups,
    format_table1,
    format_table2,
)

__all__ = [
    "CacheHit", "Comparison", "CompileCache", "CompileResult", "RunResult",
    "cfm_pipeline_id", "compare",
    "compile_baseline", "compile_cfm", "execute", "geomean",
    "ParallelRunner", "ProgressCallback", "ProgressLine",
    "SweepError", "SweepTask", "TaskResult",
    "fold_sweep_metrics", "run_task", "run_tasks",
    "SWEEP_TRACE_SCHEMA", "SWEEP_TRACE_SCHEMA_V1", "SWEEP_TRACE_SCHEMA_V2",
    "SweepTraceCollector",
    "TRACE_EVENT_POLICIES", "load_sweep_trace",
    "pass_trace_events", "write_pass_trace_jsonl",
    "CapabilityRow", "CompileTimeRow", "CounterRow",
    "DEFAULT_GRID_DIM", "DEFAULT_SEED", "Figure8Result",
    "REAL_BLOCK_SIZES", "SYNTHETIC_BLOCK_SIZES", "SpeedupRow",
    "best_improvement_rows", "counters", "figure7", "figure8",
    "figures9_and_10", "run_sweep", "table1", "table2",
    "format_counters", "format_figure8", "format_speedups",
    "format_table1", "format_table2",
]
