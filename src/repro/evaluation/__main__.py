"""Regenerate the paper's full evaluation from the command line:

    python -m repro.evaluation [--out report.txt] [--quick]

Runs Table I, Figures 7–10 and Table II and prints (or writes) the
formatted report.  ``--quick`` shrinks the sweeps for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    REAL_BLOCK_SIZES,
    best_improvement_rows,
    counters,
    figure7,
    figure8,
    table1,
    table2,
)
from .reporting import (
    format_counters,
    format_figure8,
    format_speedups,
    format_table1,
    format_table2,
)


def build_report(quick: bool = False) -> str:
    sections = []
    start = time.perf_counter()

    sections.append(format_table1(table1()))

    synthetic_sizes = [16, 32] if quick else None
    rows7, _ = figure7(block_sizes=synthetic_sizes)
    sections.append(format_speedups(rows7, "Figure 7: synthetic benchmark speedups"))

    real_sizes = ({k: v[:2] for k, v in REAL_BLOCK_SIZES.items()}
                  if quick else None)
    fig8 = figure8(block_sizes=real_sizes)
    sections.append(format_figure8(fig8))

    counter_rows = counters(best_improvement_rows(rows7 + fig8.rows))
    sections.append(format_counters(counter_rows))

    sections.append(format_table2(table2(repeats=1 if quick else 3)))

    elapsed = time.perf_counter() - start
    header = (
        "CFM/DARM reproduction — full evaluation report\n"
        f"(regenerated in {elapsed:.1f}s; see EXPERIMENTS.md for the "
        "paper-vs-measured discussion)\n"
    )
    return header + "\n\n".join([""] + sections) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate every table and figure of the paper.")
    parser.add_argument("--out", help="write the report to this file")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast smoke run")
    parser.add_argument("--json", metavar="FILE",
                        help="also dump raw speedup/counter data as JSON")
    args = parser.parse_args(argv)

    if args.json:
        import json

        from .experiments import figure7, figure8

        rows7, gm7 = figure7(block_sizes=[16, 32] if args.quick else None)
        fig8 = figure8()
        payload = {
            "figure7": {
                "geomean": gm7,
                "rows": [{"kernel": r.kernel, "block": r.block_size,
                          "speedup": r.speedup,
                          "baseline": r.comparison.baseline.as_dict(),
                          "cfm": r.comparison.melded.as_dict()}
                         for r in rows7],
            },
            "figure8": {
                "geomean": fig8.geomean_all,
                "geomean_best": fig8.geomean_best,
                "rows": [{"kernel": r.kernel, "block": r.block_size,
                          "speedup": r.speedup,
                          "baseline": r.comparison.baseline.as_dict(),
                          "cfm": r.comparison.melded.as_dict()}
                         for r in fig8.rows],
            },
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    report = build_report(quick=args.quick)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
