"""Regenerate the paper's full evaluation from the command line:

    python -m repro.evaluation [--out report.txt] [--quick] [--workers N]

Runs Table I, Figures 7–10 and Table II and prints (or writes) the
formatted report.  ``--quick`` shrinks the sweeps for a fast smoke run;
``--workers N`` fans the figure sweeps across N worker processes (rows
are deterministic — identical to the serial run); ``--kernels A,B``
restricts the sweeps to the named kernels (skipping the whole-suite
tables), which is what CI's smoke job uses; ``--compile-cache DIR``
points every worker at one persistent compile cache (see
``docs/performance.md``), so re-running the evaluation replays
compilation instead of redoing it.

A machine-readable ``sweep_trace.json`` (per-config pass timings, cache
stats, full metrics — see ``docs/evaluation.md``) is written alongside
the report unless ``--no-trace`` is given.  Schema v3 embeds Chrome
trace events (compile-pass spans, melding decisions, per-warp divergence
timelines) for the tasks selected by ``--trace-events`` — the file loads
directly in Perfetto, and ``python -m repro.obs report sweep_trace.json``
renders its divergence heatmaps — plus the run's aggregate-metrics
snapshot under a top-level ``"metrics"`` key.

``--metrics FILE`` additionally writes that snapshot as Prometheus text
exposition (scrapeable / pushable to a Pushgateway); ``--progress``
paints a live per-sweep status line on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro.kernels import REAL_WORLD_BUILDERS, SYNTHETIC_BUILDERS
from repro.obs import MetricsRegistry, NULL_REGISTRY, use_registry
from repro.simt import RECONVERGENCE_POLICIES, MachineConfig

from .experiments import (
    REAL_BLOCK_SIZES,
    best_improvement_rows,
    counters,
    figure7,
    figure8,
    table1,
    table2,
)
from .progress import ProgressLine
from .reporting import (
    format_counters,
    format_figure8,
    format_policy_comparison,
    format_speedups,
    format_table1,
    format_table2,
)
from .trace import SweepTraceCollector, TRACE_EVENT_POLICIES


def build_report(quick: bool = False, workers: int = 1,
                 timeout: Optional[float] = None,
                 kernels: Optional[Sequence[str]] = None,
                 trace: Optional[SweepTraceCollector] = None,
                 cache_dir: Optional[str] = None,
                 reconvergence: Sequence[str] = ("ipdom",),
                 progress: bool = False) -> str:
    sections = []
    start = time.perf_counter()

    def progress_line(label: str) -> Optional[ProgressLine]:
        return ProgressLine(label) if progress else None

    for policy in reconvergence:
        if policy not in RECONVERGENCE_POLICIES:
            raise SystemExit(
                f"unknown reconvergence policy {policy!r} "
                f"(available: {', '.join(RECONVERGENCE_POLICIES)})")

    synthetic = {name: builder for name, builder in SYNTHETIC_BUILDERS.items()
                 if not kernels or name in kernels}
    real = {name: builder for name, builder in REAL_WORLD_BUILDERS.items()
            if not kernels or name in kernels}
    if kernels:
        unknown = set(kernels) - set(synthetic) - set(real)
        if unknown:
            available = sorted(SYNTHETIC_BUILDERS) + sorted(REAL_WORLD_BUILDERS)
            raise SystemExit(
                f"unknown kernel(s): {', '.join(sorted(unknown))} "
                f"(available: {', '.join(available)})")

    # Whole-suite tables only make sense over the full kernel set.
    if not kernels:
        sections.append(format_table1(table1()))

    # One figure sweep per requested reconvergence policy; the Chrome
    # trace capture is attached to the first policy only so a
    # multi-policy report does not duplicate task entries.
    per_policy_rows = {}
    counter_source = []
    for position, policy in enumerate(reconvergence):
        machine = MachineConfig(reconvergence=policy)
        policy_trace = trace if position == 0 else None
        suffix = (f" [reconvergence={policy}]"
                  if len(reconvergence) > 1 or policy != "ipdom" else "")

        rows7 = []
        if synthetic:
            synthetic_sizes = [16, 32] if quick else None
            rows7, _ = figure7(block_sizes=synthetic_sizes, workers=workers,
                               timeout=timeout, trace=policy_trace,
                               builders=synthetic, machine=machine,
                               cache_dir=cache_dir,
                               progress=progress_line(f"figure7[{policy}]"))
            sections.append(format_speedups(
                rows7, f"Figure 7: synthetic benchmark speedups{suffix}"))

        fig8_rows = []
        if real:
            real_sizes = ({k: v[:2] for k, v in REAL_BLOCK_SIZES.items()}
                          if quick else None)
            fig8 = figure8(block_sizes=real_sizes, workers=workers,
                           timeout=timeout, trace=policy_trace,
                           builders=real, machine=machine,
                           cache_dir=cache_dir,
                           progress=progress_line(f"figure8[{policy}]"))
            fig8_rows = fig8.rows
            sections.append(format_figure8(fig8, suffix=suffix))

        per_policy_rows[policy] = rows7 + fig8_rows
        if position == 0:
            counter_source = rows7 + fig8_rows

    if len(reconvergence) > 1 and any(per_policy_rows.values()):
        sections.append(format_policy_comparison(
            per_policy_rows,
            "Reconvergence policy sensitivity (memory is bit-identical "
            "across policies; cycles are per-policy)"))

    if counter_source:
        counter_rows = counters(best_improvement_rows(counter_source))
        sections.append(format_counters(counter_rows))

    if not kernels:
        sections.append(format_table2(table2(repeats=1 if quick else 3)))

    elapsed = time.perf_counter() - start
    header = (
        "CFM/DARM reproduction — full evaluation report\n"
        f"(regenerated in {elapsed:.1f}s with workers={workers}; see "
        "EXPERIMENTS.md for the paper-vs-measured discussion)\n"
    )
    return header + "\n\n".join([""] + sections) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate every table and figure of the paper.")
    parser.add_argument("--out", help="write the report to this file")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast smoke run")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the figure sweeps "
                             "(default 1 = serial; rows are identical)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-task wall-clock timeout (workers > 1 only); "
                             "a timed-out config is retried once, then fails")
    parser.add_argument("--kernels", metavar="A,B,...",
                        help="restrict the sweeps to these kernels and skip "
                             "the whole-suite tables (CI smoke mode)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write the machine-readable sweep trace here "
                             "(default: sweep_trace.json next to --out)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip writing the sweep trace")
    parser.add_argument("--trace-events", choices=TRACE_EVENT_POLICIES,
                        default="first", metavar="{off,first,all}",
                        help="which sweep tasks capture Chrome trace events "
                             "into the sweep trace (default: first block "
                             "size of each kernel)")
    parser.add_argument("--json", metavar="FILE",
                        help="also dump raw speedup/counter data as JSON")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write the run's aggregate-metrics snapshot "
                             "here as Prometheus text exposition")
    parser.add_argument("--progress", action="store_true",
                        help="paint a live per-sweep status line (rows/s, "
                             "ETA) on stderr while the figures run")
    parser.add_argument("--reconvergence", metavar="P1,P2,...",
                        default="ipdom",
                        help="comma-separated reconvergence policies to "
                             f"sweep (available: "
                             f"{','.join(RECONVERGENCE_POLICIES)}; default: "
                             "ipdom).  More than one policy adds per-policy "
                             "Figure 7/8 sections plus a side-by-side "
                             "sensitivity table")
    parser.add_argument("--compile-cache", metavar="DIR", default=None,
                        help="persistent compile-cache directory shared by "
                             "all workers and repeat runs (default: the "
                             "REPRO_COMPILE_CACHE env var; 'off' disables "
                             "even that)")
    args = parser.parse_args(argv)
    cache_dir = args.compile_cache
    if cache_dir is not None and cache_dir.lower() in ("off", "0", "none"):
        # Explicitly disabled: also mask the env var for worker processes.
        os.environ["REPRO_COMPILE_CACHE"] = "off"
        cache_dir = None

    kernels = ([k.strip() for k in args.kernels.split(",") if k.strip()]
               if args.kernels else None)
    reconvergence = tuple(p.strip() for p in args.reconvergence.split(",")
                          if p.strip()) or ("ipdom",)
    trace = (None if args.no_trace
             else SweepTraceCollector(workers=args.workers,
                                      timeout=args.timeout,
                                      policy=args.trace_events))

    if args.json:
        import json

        rows7, gm7 = figure7(block_sizes=[16, 32] if args.quick else None,
                             workers=args.workers, timeout=args.timeout)
        fig8 = figure8(workers=args.workers, timeout=args.timeout)
        payload = {
            "figure7": {
                "geomean": gm7,
                "rows": [{"kernel": r.kernel, "block": r.block_size,
                          "speedup": r.speedup,
                          "baseline": r.comparison.baseline.as_dict(),
                          "cfm": r.comparison.melded.as_dict()}
                         for r in rows7],
            },
            "figure8": {
                "geomean": fig8.geomean_all,
                "geomean_best": fig8.geomean_best,
                "rows": [{"kernel": r.kernel, "block": r.block_size,
                          "speedup": r.speedup,
                          "baseline": r.comparison.baseline.as_dict(),
                          "cfm": r.comparison.melded.as_dict()}
                         for r in fig8.rows],
            },
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    # Aggregate metrics ride along whenever there is somewhere to put
    # them: the --metrics file and/or the sweep trace's "metrics" key.
    registry = (MetricsRegistry() if args.metrics or trace is not None
                else NULL_REGISTRY)
    with use_registry(registry):
        report = build_report(quick=args.quick, workers=args.workers,
                              timeout=args.timeout, kernels=kernels,
                              trace=trace, cache_dir=cache_dir,
                              reconvergence=reconvergence,
                              progress=args.progress)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)

    if args.metrics:
        registry.write_prom(args.metrics)
        print(f"wrote {args.metrics}")

    if trace is not None:
        if registry.enabled:
            trace.metrics = registry.snapshot()
        trace_path = args.trace or os.path.join(
            os.path.dirname(args.out) if args.out else ".",
            "sweep_trace.json")
        trace.write(trace_path)
        print(f"wrote {trace_path} ({trace.task_count} task entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
