"""Plain-text formatting of experiment results, mirroring the paper's
tables/figures so `pytest benchmarks/ --benchmark-only -s` output can be
compared to the paper side by side."""

from __future__ import annotations

from typing import Dict, List

from .experiments import (
    CapabilityRow,
    CompileTimeRow,
    CounterRow,
    Figure8Result,
    SpeedupRow,
)
from .runner import geomean


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def format_speedups(rows: List[SpeedupRow], title: str) -> str:
    body = [[r.kernel, str(r.block_size), f"{r.speedup:.3f}",
             str(r.baseline_cycles), str(r.cfm_cycles), str(r.melds)]
            for r in rows]
    # geomean() raises on empty input; an empty sweep is rendered
    # explicitly rather than as a misleading GM figure.
    gm = f"{geomean([r.speedup for r in rows]):.3f}" if rows else "n/a"
    return (f"{title}\n"
            + _table(["kernel", "block", "speedup", "base cycles",
                      "cfm cycles", "melds"], body)
            + f"\nGM = {gm}")


def format_figure8(result: Figure8Result, suffix: str = "") -> str:
    body = []
    for r in result.rows:
        mark = "+" if result.best_baseline_block[r.kernel] == r.block_size else " "
        body.append([f"{r.kernel}{mark}", str(r.block_size), f"{r.speedup:.3f}",
                     str(r.baseline_cycles), str(r.cfm_cycles), str(r.melds)])
    return ("Figure 8: real-world benchmark speedups "
            f"('+' = best baseline block size){suffix}\n"
            + _table(["kernel", "block", "speedup", "base cycles",
                      "cfm cycles", "melds"], body)
            + f"\nGM = {result.geomean_all:.3f}   GM-best = {result.geomean_best:.3f}")


def format_policy_comparison(rows_by_policy: Dict[str, List[SpeedupRow]],
                             title: str) -> str:
    """Side-by-side reconvergence-policy table over one sweep's rows.

    Device memory is bit-identical across policies (the difftest
    contract), so the comparison is purely about cycles: per-policy
    baseline cycles with a ratio against the first policy, and
    per-policy CFM speedups.  A ratio of 1.000 means the kernel's
    control flow is structured enough that the policies schedule it
    identically.
    """
    policies = list(rows_by_policy)
    base = policies[0]
    index = {policy: {(r.kernel, r.block_size): r for r in rows}
             for policy, rows in rows_by_policy.items()}
    headers = ["kernel", "block"]
    headers += [f"base cycles ({policy})" for policy in policies]
    headers += [f"ratio {policy}/{base}" for policy in policies[1:]]
    headers += [f"speedup ({policy})" for policy in policies]
    body = []
    for row in rows_by_policy[base]:
        key = (row.kernel, row.block_size)
        others = [index[policy].get(key) for policy in policies[1:]]
        cells = [row.kernel, str(row.block_size)]
        cells.append(str(row.baseline_cycles))
        cells += [str(o.baseline_cycles) if o else "n/a" for o in others]
        cells += [f"{o.baseline_cycles / row.baseline_cycles:.3f}"
                  if o else "n/a" for o in others]
        cells.append(f"{row.speedup:.3f}")
        cells += [f"{o.speedup:.3f}" if o else "n/a" for o in others]
        body.append(cells)
    footer = "   ".join(
        f"GM({policy}) = {geomean([r.speedup for r in rows]):.3f}"
        if rows else f"GM({policy}) = n/a"
        for policy, rows in rows_by_policy.items())
    return f"{title}\n" + _table(headers, body) + "\n" + footer


def format_counters(rows: List[CounterRow]) -> str:
    alu = [[r.kernel, str(r.block_size),
            f"{r.baseline_alu_utilization:.1%}", f"{r.cfm_alu_utilization:.1%}"]
           for r in rows]
    mem = [[r.kernel, str(r.block_size),
            f"{r.normalized_vector_memory:.3f}",
            f"{r.normalized_shared_memory:.3f}",
            f"{r.normalized_flat_memory:.3f}"]
           for r in rows]
    return ("Figure 9: ALU utilization (baseline vs CFM)\n"
            + _table(["kernel", "block", "baseline", "cfm"], alu)
            + "\n\nFigure 10: memory instruction counters (CFM / baseline)\n"
            + _table(["kernel", "block", "vmem", "lds", "flat"], mem))


def format_table1(rows: List[CapabilityRow]) -> str:
    body = [[r.pattern, r.technique,
             "yes" if r.melds else "no",
             f"{r.divergent_branches_before}->{r.divergent_branches_after}",
             "ok" if r.outputs_correct else "WRONG"]
            for r in rows]
    return ("Table I: capability matrix\n"
            + _table(["pattern", "technique", "melds", "divergent brs",
                      "outputs"], body))


def format_table2(rows: List[CompileTimeRow]) -> str:
    body = [[r.kernel, f"{r.o3_seconds:.4f}", f"{r.cfm_seconds:.4f}",
             f"{r.normalized:.4f}"]
            for r in rows]
    return ("Table II: average compile time in seconds\n"
            + _table(["kernel", "O3", "CFM", "normalized"], body))
