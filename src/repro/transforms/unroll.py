"""Full loop unrolling for counted loops.

The paper's CFGs are produced by ROCm HIPCC at ``-O3``, which "aggressively
unrolls both loops" of the bitonic kernel (§IV-B) — the repeated,
isomorphic inner-loop bodies are precisely the subgraphs CFM melds, and
PCM's compile-time blowup (Table II) comes from the many unrolled
subgraph pairs.  This pass reproduces that pipeline stage.

Scope (matching what the DSL front-end emits):

* header-exiting loops — ``header: φs; cond; br body, exit`` — with a
  single latch;
* trip counts determined by *scalar symbolic execution* of the header φs:
  all φ initial values must be constants and each update chain must only
  involve φs, constants and pure arithmetic.  This handles both
  ``for (i = 0; i < 8; i++)`` and the bitonic/PCM patterns
  (``k *= 2``, ``j /= 2``).

Nested loops unroll inside-out; the driver `unroll_loops` interleaves
constant folding so outer-loop unrolling exposes constant bounds for the
inner clones (e.g. bitonic's ``j = k / 2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.loops import Loop, compute_loop_info
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    IntrinsicName,
    Phi,
    Select,
    UnaryOp,
)
from repro.ir.scalars import EvalError, eval_binary, eval_cast, eval_fcmp, eval_icmp
from repro.ir.values import Constant, Undef, Value

from .clone import clone_blocks
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .simplifycfg import simplify_cfg


@dataclass
class UnrollLimits:
    """Safety valves for code growth."""

    max_trip_count: int = 128
    max_unrolled_instructions: int = 100_000
    max_eval_steps: int = 10_000


DEFAULT_LIMITS = UnrollLimits()


class _SymbolicEvaluator:
    """Evaluates pure instruction DAGs over current φ values."""

    def __init__(self, phi_values: Dict[Phi, int], limits: UnrollLimits) -> None:
        self.phi_values = phi_values
        self.limits = limits
        self._steps = 0

    def eval(self, value: Value) -> Optional[object]:
        self._steps += 1
        if self._steps > self.limits.max_eval_steps:
            return None
        if isinstance(value, Constant) and not isinstance(value, Undef):
            return value.value
        if isinstance(value, Phi):
            return self.phi_values.get(value)
        if isinstance(value, BinaryOp):
            lhs, rhs = self.eval(value.lhs), self.eval(value.rhs)
            if lhs is None or rhs is None:
                return None
            try:
                return eval_binary(value.opcode, lhs, rhs, value.type)
            except EvalError:
                return None
        if isinstance(value, ICmp):
            lhs, rhs = self.eval(value.lhs), self.eval(value.rhs)
            if lhs is None or rhs is None:
                return None
            return eval_icmp(value.predicate, lhs, rhs, value.lhs.type)
        if isinstance(value, FCmp):
            lhs, rhs = self.eval(value.lhs), self.eval(value.rhs)
            if lhs is None or rhs is None:
                return None
            return eval_fcmp(value.predicate, lhs, rhs)
        if isinstance(value, Select):
            cond = self.eval(value.condition)
            if cond is None:
                return None
            return self.eval(value.true_value if cond else value.false_value)
        if isinstance(value, Cast):
            inner = self.eval(value.value)
            if inner is None:
                return None
            try:
                return eval_cast(value.opcode, inner, value.value.type, value.type)
            except EvalError:
                return None
        if isinstance(value, UnaryOp):
            inner = self.eval(value.operand(0))
            return None if inner is None else -inner
        if isinstance(value, Call) and value.callee in (IntrinsicName.MIN,
                                                        IntrinsicName.MAX):
            lhs, rhs = self.eval(value.args[0]), self.eval(value.args[1])
            if lhs is None or rhs is None:
                return None
            return min(lhs, rhs) if value.callee == IntrinsicName.MIN else max(lhs, rhs)
        return None


def _loop_shape(loop: Loop):
    """Validate the supported shape; returns (body_entry, exit, latch) or
    None.  Supported: header is the only exiting block, conditional branch
    with one successor in-loop and one out, single latch."""
    header = loop.header
    if loop.exiting_blocks != [header]:
        return None
    latch = loop.single_latch
    if latch is None:
        return None
    term = header.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        return None
    succs = term.successors
    inside = [s for s in succs if s in loop.blocks]
    outside = [s for s in succs if s not in loop.blocks]
    if len(inside) != 1 or len(outside) != 1:
        return None
    preheaders = [p for p in header.preds if p not in loop.blocks]
    if len(preheaders) != 1:
        return None
    return inside[0], outside[0], latch, preheaders[0]


def compute_trip_count(loop: Loop, limits: UnrollLimits = DEFAULT_LIMITS) -> Optional[int]:
    """Trip count (number of body executions) by symbolic execution, or
    ``None`` when the loop is not a recognizable counted loop."""
    shape = _loop_shape(loop)
    if shape is None:
        return None
    body_entry, _exit, latch, preheader = shape
    header = loop.header
    term = header.terminator
    body_is_true = term.true_successor is body_entry

    phis = header.phis
    values: Dict[Phi, object] = {}
    for phi in phis:
        init = phi.incoming_for(preheader)
        if not isinstance(init, Constant) or isinstance(init, Undef):
            return None
        values[phi] = init.value

    trips = 0
    while trips <= limits.max_trip_count:
        evaluator = _SymbolicEvaluator(values, limits)
        cond = evaluator.eval(term.condition)
        if cond is None:
            return None
        enters_body = bool(cond) == body_is_true
        if not enters_body:
            return trips
        # Advance all φs simultaneously through the latch values.
        evaluator = _SymbolicEvaluator(values, limits)
        next_values: Dict[Phi, object] = {}
        for phi in phis:
            result = evaluator.eval(phi.incoming_for(latch))
            if result is None:
                return None
            next_values[phi] = result
        values = next_values
        trips += 1
    return None


def unroll_loop(function: Function, loop: Loop,
                limits: UnrollLimits = DEFAULT_LIMITS) -> bool:
    """Fully unroll one counted loop.  Returns True on success."""
    trips = compute_trip_count(loop, limits)
    if trips is None:
        return False
    shape = _loop_shape(loop)
    body_entry, exit_block, latch, preheader = shape
    header = loop.header
    term = header.terminator

    body_blocks = [b for b in function.blocks if b in loop.blocks and b is not header]
    header_extras = [i for i in header.non_phi_instructions if not i.is_terminator]
    body_size = sum(len(b) for b in body_blocks) + len(header_extras)
    if trips * max(1, body_size) > limits.max_unrolled_instructions:
        return False
    # φs inside the body must not reference the header as a predecessor
    # (clone_blocks would drop those incoming entries).
    for block in body_blocks:
        for phi in block.phis:
            if any(p not in loop.blocks or p is header
                   for p in phi.incoming_blocks):
                return False

    phis = header.phis
    # Current reaching value for each header φ.
    current: Dict[Phi, Value] = {phi: phi.incoming_for(preheader) for phi in phis}
    latch_values: Dict[Phi, Value] = {phi: phi.incoming_for(latch) for phi in phis}

    # The preheader currently branches to the header; retarget as we go.
    def retarget(from_block: BasicBlock, old: BasicBlock, new: BasicBlock) -> None:
        from_block.terminator.replace_successor(old, new)

    def clone_header_extras(into: BasicBlock, seed: Dict[Value, Value]) -> None:
        """Clone the header's non-φ computations with ``seed`` remapping,
        extending ``seed`` with the clones."""
        for instr in header_extras:
            clone = instr.clone()
            clone.name = instr.name
            for i, operand in enumerate(clone.operands):
                mapped = seed.get(operand)
                if mapped is not None:
                    clone.set_operand(i, mapped)
            into.append(clone)
            seed[instr] = clone

    previous_tail = preheader
    anchor = header
    for iteration in range(trips):
        # Header computations (minus φs/terminator) execute per iteration;
        # they go into a per-iteration prologue block.
        seed: Dict[Value, Value] = dict(current)
        prologue = function.add_block(f"{header.name}.it{iteration}", after=anchor)
        clone_header_extras(prologue, seed)
        cloned = clone_blocks(function, body_blocks, f"it{iteration}",
                              extra_value_map=seed, insert_after=prologue)
        prologue.append(Branch([cloned.block(body_entry)]))
        retarget(previous_tail, header, prologue)
        previous_tail = cloned.block(latch)
        anchor = previous_tail
        # The cloned latch still branches to the original header.
        current = {phi: cloned.value(latch_values[phi]) for phi in phis}

    # The final header evaluation (the one whose condition exits) still
    # executes its non-φ computations, which may be used past the loop —
    # the header dominates the exit, so any later block may reference
    # them.  Materialize that last evaluation explicitly.
    final_map: Dict[Value, Value] = dict(current)
    final_block = function.add_block(f"{header.name}.final", after=anchor)
    clone_header_extras(final_block, final_map)
    final_block.append(Branch([exit_block]))
    retarget(previous_tail, header, final_block)
    previous_tail = final_block

    # Exit-block φs: the edge from the header becomes the edge from the
    # final block, with values remapped through the last evaluation.
    for phi in exit_block.phis:
        value = phi.incoming_for(header)
        phi.replace_incoming_block(header, previous_tail)
        phi.set_incoming_for(previous_tail, final_map.get(value, value))

    # Out-of-loop uses of header definitions see the final values.
    for instr in list(phis) + header_extras:
        final = final_map[instr]
        for user, index in instr.uses:
            if (isinstance(user, Instruction) and user.parent is not None
                    and user.parent not in loop.blocks
                    and user.parent is not final_block):
                user.set_operand(index, final)

    # Delete the original loop: header + body blocks are now unreachable.
    simplify_cfg(function)
    eliminate_dead_code(function)
    return True


def unroll_loops(function: Function, limits: UnrollLimits = DEFAULT_LIMITS) -> bool:
    """Unroll all counted loops inside-out, interleaving constant folding
    so outer unrolling exposes inner trip counts."""
    changed = False
    progress = True
    while progress:
        progress = False
        fold_constants(function)
        loop_info = compute_loop_info(function)
        # Innermost first: deepest loops have no children.
        for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
            if unroll_loop(function, loop, limits):
                progress = changed = True
                break  # loop structures are stale; recompute
    if changed:
        fold_constants(function)
        simplify_cfg(function)
        eliminate_dead_code(function)
    return changed


def unroll_partial(function: Function, loop: Loop, factor: int,
                   limits: UnrollLimits = DEFAULT_LIMITS) -> bool:
    """Runtime (partial) unrolling by ``factor`` with kept exit checks.

    For header-exiting loops whose trip count is unknown at compile time,
    the body is replicated ``factor`` times *inside* the loop, each copy
    preceded by a clone of the header's exit check::

        header: φs; cond; br body0, exit
        body0 -> check1 -> body1 -> ... -> body{F-1} -> header

    Semantics are exactly preserved for any trip count (every copy still
    checks), at the cost of one branch per iteration copy — the classic
    LLVM runtime-unrolling shape without prologue peeling.  Returns True
    on success.
    """
    if factor < 2:
        return False
    shape = _loop_shape(loop)
    if shape is None:
        return False
    body_entry, exit_block, latch, preheader = shape
    header = loop.header
    term = header.terminator
    body_is_true = term.true_successor is body_entry

    body_blocks = [b for b in function.blocks if b in loop.blocks and b is not header]
    header_extras = [i for i in header.non_phi_instructions if not i.is_terminator]
    body_size = sum(len(b) for b in body_blocks) + len(header_extras)
    if factor * max(1, body_size) > limits.max_unrolled_instructions:
        return False
    for block in body_blocks:
        for phi in block.phis:
            if any(p not in loop.blocks or p is header
                   for p in phi.incoming_blocks):
                return False

    phis = header.phis
    latch_values: Dict[Phi, Value] = {phi: phi.incoming_for(latch) for phi in phis}

    def clone_header_extras(into: BasicBlock, seed: Dict[Value, Value]) -> None:
        for instr in header_extras:
            clone = instr.clone()
            clone.name = instr.name
            for i, operand in enumerate(clone.operands):
                mapped = seed.get(operand)
                if mapped is not None:
                    clone.set_operand(i, mapped)
            into.append(clone)
            seed[instr] = clone

    # Values of each header φ at the end of the previous copy.
    current: Dict[Phi, Value] = dict(latch_values)
    anchor = latch
    check_blocks: List[Tuple[BasicBlock, Dict[Value, Value]]] = []
    copy_latches: List[BasicBlock] = []

    # Clone everything first (from the still-pristine originals: the
    # cloned latch branches must inherit the *header* target, so no edge
    # is redirected until all copies exist), wire edges afterwards.
    for copy in range(1, factor):
        seed: Dict[Value, Value] = dict(current)
        check = function.add_block(f"{header.name}.u{copy}", after=anchor)
        clone_header_extras(check, seed)
        cloned = clone_blocks(function, body_blocks, f"u{copy}",
                              extra_value_map=seed, insert_after=check)
        cond_clone = seed.get(term.condition, term.condition)
        body_clone = cloned.block(body_entry)
        if body_is_true:
            check.append(Branch([body_clone, exit_block], cond_clone))
        else:
            check.append(Branch([exit_block, body_clone], cond_clone))
        check_blocks.append((check, dict(seed)))
        copy_latches.append(cloned.block(latch))
        anchor = copy_latches[-1]
        current = {phi: cloned.value(latch_values[phi]) for phi in phis}

    previous_latch = latch
    for (check, _seed), copy_latch in zip(check_blocks, copy_latches):
        previous_latch.terminator.replace_successor(header, check)
        previous_latch = copy_latch

    # The final copy's latch closes the backedge; header φs now receive
    # the last copy's values along it.
    for phi in phis:
        phi.set_incoming_for(latch, current[phi])
        phi.replace_incoming_block(latch, previous_latch)

    # Exit φs gain one incoming edge per new check block, carrying the
    # value as of that copy (remapped through its seed).
    existing_exit_phis = exit_block.phis
    for phi in existing_exit_phis:
        value = phi.incoming_for(header)
        for check, seed in check_blocks:
            phi.add_incoming(seed.get(value, value), check)

    # LCSSA for direct out-of-loop uses of header definitions: the loop
    # now exits from several program points with *different* values of
    # each header φ (and header computation), so downstream users must
    # read a merge φ in the exit block instead of the stale header value.
    check_set = {check for check, _ in check_blocks}
    for definition in list(phis) + header_extras:
        outside_users = [
            (user, index) for user, index in definition.uses
            if isinstance(user, Instruction) and user.parent is not None
            and user.parent not in loop.blocks
            and user.parent not in check_set
            and not (user in existing_exit_phis)
        ]
        if not outside_users:
            continue
        merge = Phi(definition.type, definition.name or "lcssa")
        exit_block.insert_after_phis(merge)
        for pred in exit_block.preds:
            if pred in check_set:
                seed = next(s for c, s in check_blocks if c is pred)
                merge.add_incoming(seed.get(definition, definition), pred)
            else:
                # The header itself, or any pred already dominated by the
                # header: the in-flight header value is correct there.
                merge.add_incoming(definition, pred)
        for user, index in outside_users:
            if user is merge:
                continue
            user.set_operand(index, merge)

    # Any residual dominance wrinkles (e.g. values threading through the
    # cloned checks) are repaired generically.
    from .ssa_repair import repair_ssa

    repair_ssa(function)
    return True
