"""Loop-invariant code motion.

Hoists speculatable computations whose operands are loop-invariant into
the loop preheader.  The rolled benchmark kernels recompute thread-local
addresses (``gep shared, tid``) every iteration; hoisting them is part of
any ``-O3`` pipeline and keeps the baseline honest.

Only pure, non-trapping instructions move (loads stay: no alias analysis,
and shared memory is mutated cross-lane between barriers).  Loops without
a preheader are skipped.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.loops import Loop, compute_loop_info
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Phi
from repro.ir.values import Value


def _is_hoistable(instr: Instruction) -> bool:
    if isinstance(instr, Phi) or instr.is_terminator:
        return False
    if not instr.is_speculatable:
        return False
    if isinstance(instr, Call) and not instr.is_pure_intrinsic:
        return False
    return True


def hoist_loop_invariants(function: Function) -> bool:
    """Run LICM on every loop (innermost-first).  Returns True if any
    instruction moved."""
    changed = False
    loop_info = compute_loop_info(function)
    for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
        changed |= _hoist_one_loop(loop)
    return changed


def _hoist_one_loop(loop: Loop) -> bool:
    preheader = loop.preheader
    if preheader is None:
        return False
    changed = False
    # Fixpoint: hoisting an instruction can make its users invariant.
    progress = True
    invariant_defs: Set[Value] = set()
    while progress:
        progress = False
        for block in sorted(loop.blocks, key=lambda b: b.name):
            for instr in block.instructions:
                if not _is_hoistable(instr):
                    continue
                if not all(_operand_invariant(op, loop, invariant_defs)
                           for op in instr.operands):
                    continue
                block._remove_instruction(instr)
                preheader.insert_before_terminator(instr)
                instr.parent = preheader
                invariant_defs.add(instr)
                progress = changed = True
    return changed


def _operand_invariant(operand: Value, loop: Loop,
                       hoisted: Set[Value]) -> bool:
    if operand in hoisted:
        return True
    if isinstance(operand, Instruction):
        return operand.parent not in loop.blocks
    return True  # constants, arguments, globals, undef
