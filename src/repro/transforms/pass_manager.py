"""Function-pass infrastructure.

A *pass* is any callable ``(Function) -> bool`` returning whether it
changed the IR.  :class:`PassPipeline` runs passes in order (optionally to
a fixpoint) and can verify the IR after each pass — the test suite runs
every pipeline in verifying mode, which is how transform bugs surface as
precise verifier errors rather than downstream miscompiles.

Timings are scoped per invocation: ``timings`` holds only the pass
executions of the most recent :meth:`PassPipeline.run` /
:meth:`PassPipeline.run_to_fixpoint` call, while ``cumulative_timings``
accumulates across the pipeline object's whole lifetime.  Table II's
compile-time breakdown reads the per-invocation view (one kernel per
invocation); the cumulative view exists for whole-session profiling.

With ``collect_ir_stats=True`` every :class:`PassTiming` also records the
IR's block/instruction counts before and after the pass, which the
evaluation harness serializes into its structured sweep trace (see
``repro.evaluation.trace``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.verifier import verify_function

FunctionPass = Callable[[Function], bool]


@dataclass
class PassTiming:
    """One pass execution: wall-clock seconds plus optional IR size stats
    (Table II's raw material and the sweep trace's per-pass events)."""

    name: str
    seconds: float
    changed: bool
    blocks_before: Optional[int] = None
    blocks_after: Optional[int] = None
    instructions_before: Optional[int] = None
    instructions_after: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable event (one line of the pass trace)."""
        event: Dict[str, object] = {
            "pass": self.name,
            "seconds": self.seconds,
            "changed": self.changed,
        }
        if self.blocks_before is not None:
            event.update(
                blocks_before=self.blocks_before,
                blocks_after=self.blocks_after,
                instructions_before=self.instructions_before,
                instructions_after=self.instructions_after,
            )
        return event


class FixpointError(RuntimeError):
    """A pipeline kept reporting changes at the iteration cap."""

    def __init__(self, function_name: str, max_iterations: int,
                 unstable_passes: List[str]) -> None:
        self.function_name = function_name
        self.max_iterations = max_iterations
        self.unstable_passes = list(unstable_passes)
        detail = (", ".join(self.unstable_passes)
                  if self.unstable_passes else "<none recorded>")
        super().__init__(
            f"pipeline did not reach a fixpoint in {max_iterations} "
            f"iterations on @{function_name}; passes still reporting "
            f"changes in the final iteration: {detail}")


class PassPipeline:
    """An ordered list of named function passes."""

    def __init__(self, passes: Optional[List[Tuple[str, FunctionPass]]] = None,
                 verify: bool = False, collect_ir_stats: bool = False) -> None:
        self._passes: List[Tuple[str, FunctionPass]] = list(passes or [])
        self.verify = verify
        self.collect_ir_stats = collect_ir_stats
        #: pass executions of the most recent run()/run_to_fixpoint() call
        self.timings: List[PassTiming] = []
        #: every pass execution over the pipeline object's lifetime
        self.cumulative_timings: List[PassTiming] = []

    def add(self, name: str, pass_: FunctionPass) -> "PassPipeline":
        self._passes.append((name, pass_))
        return self

    @staticmethod
    def _ir_size(function: Function) -> Tuple[int, int]:
        blocks = function.blocks
        return len(blocks), sum(len(block) for block in blocks)

    def _run_once(self, function: Function) -> bool:
        """One sweep over the pass list, appending to the current scope."""
        changed = False
        for name, pass_ in self._passes:
            if self.collect_ir_stats:
                blocks_before, instrs_before = self._ir_size(function)
            start = time.perf_counter()
            pass_changed = pass_(function)
            timing = PassTiming(name, time.perf_counter() - start, pass_changed)
            if self.collect_ir_stats:
                timing.blocks_before = blocks_before
                timing.instructions_before = instrs_before
                timing.blocks_after, timing.instructions_after = \
                    self._ir_size(function)
            self.timings.append(timing)
            self.cumulative_timings.append(timing)
            changed |= pass_changed
            if self.verify:
                try:
                    verify_function(function)
                except Exception as exc:
                    raise RuntimeError(
                        f"IR verification failed after pass {name!r}") from exc
        return changed

    def run(self, function: Function) -> bool:
        """Run each pass once, in order.  Returns True if any changed IR."""
        self.timings = []
        return self._run_once(function)

    def run_to_fixpoint(self, function: Function, max_iterations: int = 32) -> bool:
        """Repeat the whole pipeline until nothing changes.

        All iterations share one timing scope: after the call,
        ``timings`` holds every pass execution of this invocation.
        """
        self.timings = []
        any_change = False
        iteration_start = 0
        for _ in range(max_iterations):
            iteration_start = len(self.timings)
            if not self._run_once(function):
                return any_change
            any_change = True
        unstable = sorted({t.name for t in self.timings[iteration_start:]
                           if t.changed})
        raise FixpointError(function.name, max_iterations, unstable)

    @property
    def total_seconds(self) -> float:
        """Seconds spent in the most recent run()/run_to_fixpoint()."""
        return sum(t.seconds for t in self.timings)

    @property
    def cumulative_seconds(self) -> float:
        """Seconds spent across every invocation of this pipeline object."""
        return sum(t.seconds for t in self.cumulative_timings)

    def trace_events(self) -> List[Dict[str, object]]:
        """The current scope's timings as JSON-serializable events."""
        return [t.as_dict() for t in self.timings]
