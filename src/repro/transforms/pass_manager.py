"""Function-pass infrastructure.

A *pass* is any callable ``(Function) -> bool`` returning whether it
changed the IR.  :class:`PassPipeline` runs passes in order (optionally to
a fixpoint) and can verify the IR after each pass — the test suite runs
every pipeline in verifying mode, which is how transform bugs surface as
precise verifier errors rather than downstream miscompiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.verifier import verify_function

FunctionPass = Callable[[Function], bool]


@dataclass
class PassTiming:
    """Wall-clock seconds spent in one pass (Table II's raw material)."""

    name: str
    seconds: float
    changed: bool


class PassPipeline:
    """An ordered list of named function passes."""

    def __init__(self, passes: Optional[List[Tuple[str, FunctionPass]]] = None,
                 verify: bool = False) -> None:
        self._passes: List[Tuple[str, FunctionPass]] = list(passes or [])
        self.verify = verify
        self.timings: List[PassTiming] = []

    def add(self, name: str, pass_: FunctionPass) -> "PassPipeline":
        self._passes.append((name, pass_))
        return self

    def run(self, function: Function) -> bool:
        """Run each pass once, in order.  Returns True if any changed IR."""
        changed = False
        for name, pass_ in self._passes:
            start = time.perf_counter()
            pass_changed = pass_(function)
            self.timings.append(
                PassTiming(name, time.perf_counter() - start, pass_changed))
            changed |= pass_changed
            if self.verify:
                try:
                    verify_function(function)
                except Exception as exc:
                    raise RuntimeError(
                        f"IR verification failed after pass {name!r}") from exc
        return changed

    def run_to_fixpoint(self, function: Function, max_iterations: int = 32) -> bool:
        """Repeat the whole pipeline until nothing changes."""
        any_change = False
        for _ in range(max_iterations):
            if not self.run(function):
                return any_change
            any_change = True
        raise RuntimeError(
            f"pipeline did not reach a fixpoint in {max_iterations} iterations "
            f"on @{function.name}")

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)
