"""Function-pass infrastructure.

Two pass forms share one pipeline:

* a plain callable ``(Function) -> bool`` returning whether it changed
  the IR — every standard transform in :mod:`repro.transforms` has this
  shape;
* a :class:`Pass` subclass whose ``run(function) -> PassResult`` can
  also surface structured statistics (the CFM pass returns its
  :class:`~repro.core.pass_.CFMStats`, the baselines their change flag).

:class:`PassPipeline` hosts both behind the :class:`Pass` interface
(callables are wrapped on :meth:`PassPipeline.add`), runs them in order
(optionally to a fixpoint) and can verify the IR after each pass — the
test suite runs every pipeline in verifying mode, which is how transform
bugs surface as precise verifier errors rather than downstream
miscompiles.  The ``verify_after_each`` hook generalizes this: any
callable ``(pass_name, function) -> None`` is invoked after **every**
pass execution, which is how the differential-testing oracle
(:mod:`repro.difftest`) attributes a verifier failure to the exact pass
that introduced it.  ``lint_after_each`` is the symmetric seam for
*semantic* diagnostics: it runs right after ``verify_after_each``, and
the oracle's differential-lint arm uses it to assert that no pass
introduces a new error-severity :mod:`repro.lint` diagnostic.

Timings are scoped per invocation: ``timings`` holds only the pass
executions of the most recent :meth:`PassPipeline.run` /
:meth:`PassPipeline.run_to_fixpoint` call, while ``cumulative_timings``
accumulates across the pipeline object's whole lifetime.  Table II's
compile-time breakdown reads the per-invocation view (one kernel per
invocation); the cumulative view exists for whole-session profiling.

With ``collect_ir_stats=True`` every :class:`PassTiming` also records the
IR's block/instruction counts before and after the pass, which the
evaluation harness serializes into its structured sweep trace (see
``repro.evaluation.trace``).

When an ambient tracer is enabled (``repro.obs``), every pass execution
is additionally emitted as one compile-side span (IR-size deltas in the
span args, so Perfetto shows the same data the structured trace holds);
under the default no-op tracer this costs one attribute check per pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.divergence import invalidate_divergence
from repro.ir.function import Function
from repro.ir.verifier import verify_function
from repro.obs import current_tracer, emit_pass_timing, pass_timing_event, \
    pass_timing_events, record_pass_seconds

FunctionPass = Callable[[Function], bool]

#: hook signature for ``PassPipeline(verify_after_each=...)``
AfterPassHook = Callable[[str, Function], None]

#: hook signature for ``PassPipeline(validate_melds=...)`` — also receives
#: the :class:`PassResult`, whose stats carry per-meld validation verdicts
ValidateMeldsHook = Callable[[str, Function, "PassResult"], None]


@dataclass
class PassResult:
    """Outcome of one :meth:`Pass.run`: the change flag every caller
    needs plus whatever structured statistics the pass produces."""

    changed: bool
    stats: Optional[object] = None

    def __bool__(self) -> bool:
        return self.changed


class Pass:
    """A named function transformation with a uniform invocation surface.

    Subclasses set :attr:`name` and implement
    :meth:`run(function) -> PassResult`.  Instances are also plain
    ``(Function) -> bool`` callables, so a :class:`Pass` drops into any
    code path that still expects the callable form.
    """

    name: str = "pass"

    def run(self, function: Function) -> PassResult:
        raise NotImplementedError

    def __call__(self, function: Function) -> bool:
        return self.run(function).changed

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CallablePass(Pass):
    """Adapter giving a plain ``(Function) -> bool`` callable the
    :class:`Pass` interface (used by :meth:`PassPipeline.add`)."""

    def __init__(self, name: str, fn: FunctionPass) -> None:
        self.name = name
        self.fn = fn

    def run(self, function: Function) -> PassResult:
        return PassResult(changed=bool(self.fn(function)))


def as_pass(pass_: Union[Pass, FunctionPass], name: Optional[str] = None) -> Pass:
    """Normalize a pass-like object to a :class:`Pass` instance."""
    if isinstance(pass_, Pass):
        return pass_
    return CallablePass(name or getattr(pass_, "__name__", "pass"), pass_)


@dataclass
class PassTiming:
    """One pass execution: wall-clock seconds plus optional IR size stats
    (Table II's raw material and the sweep trace's per-pass events)."""

    name: str
    seconds: float
    changed: bool
    blocks_before: Optional[int] = None
    blocks_after: Optional[int] = None
    instructions_before: Optional[int] = None
    instructions_after: Optional[int] = None
    #: this timing was replayed from a compile cache, not measured live
    #: (``seconds`` reports the original run; trace spans carry the flag)
    cached: bool = False

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable event (one line of the pass trace).

        Thin alias of :func:`repro.obs.pass_timing_event`, the single
        implementation of the event shape.
        """
        return pass_timing_event(self)


class FixpointError(RuntimeError):
    """A pipeline kept reporting changes at the iteration cap."""

    def __init__(self, function_name: str, max_iterations: int,
                 unstable_passes: List[str]) -> None:
        self.function_name = function_name
        self.max_iterations = max_iterations
        self.unstable_passes = list(unstable_passes)
        detail = (", ".join(self.unstable_passes)
                  if self.unstable_passes else "<none recorded>")
        super().__init__(
            f"pipeline did not reach a fixpoint in {max_iterations} "
            f"iterations on @{function_name}; passes still reporting "
            f"changes in the final iteration: {detail}")


class PassPipeline:
    """An ordered list of named function passes (:class:`Pass` objects
    or plain callables; see module docstring)."""

    def __init__(self,
                 passes: Optional[Sequence[Union[Pass, Tuple[str, FunctionPass]]]] = None,
                 verify: bool = False, collect_ir_stats: bool = False,
                 verify_after_each: Optional[AfterPassHook] = None,
                 lint_after_each: Optional[AfterPassHook] = None,
                 validate_melds: Optional[ValidateMeldsHook] = None) -> None:
        self._passes: List[Pass] = []
        for entry in passes or []:
            if isinstance(entry, Pass):
                self._passes.append(entry)
            else:
                name, fn = entry
                self._passes.append(as_pass(fn, name))
        self.verify = verify
        #: callable ``(pass_name, function)`` invoked after every pass
        #: execution; raise from it to abort the pipeline with context
        self.verify_after_each = verify_after_each
        #: like ``verify_after_each`` but for semantic diagnostics; runs
        #: after it, so lint sees only verifier-clean IR
        self.lint_after_each = lint_after_each
        #: callable ``(pass_name, function, result)`` invoked after every
        #: pass execution, last of the three hooks; the standard hook is
        #: :func:`repro.analysis.validate.validate_melds_hook`, which
        #: raises on any INEQUIVALENT meld the pass recorded
        self.validate_melds = validate_melds
        self.collect_ir_stats = collect_ir_stats
        #: pass executions of the most recent run()/run_to_fixpoint() call
        self.timings: List[PassTiming] = []
        #: every pass execution over the pipeline object's lifetime
        self.cumulative_timings: List[PassTiming] = []

    def add(self, pass_or_name: Union[Pass, str],
            pass_: Optional[FunctionPass] = None) -> "PassPipeline":
        """Append a pass: ``add(PassInstance)`` or ``add("name", fn)``."""
        if isinstance(pass_or_name, Pass):
            if pass_ is not None:
                raise TypeError("add(Pass) takes no second argument")
            self._passes.append(pass_or_name)
        else:
            if pass_ is None:
                raise TypeError("add(name, fn) requires the pass callable")
            self._passes.append(as_pass(pass_, pass_or_name))
        return self

    @property
    def passes(self) -> List[Pass]:
        """The hosted passes, in execution order."""
        return list(self._passes)

    @staticmethod
    def _ir_size(function: Function) -> Tuple[int, int]:
        blocks = function.blocks
        return len(blocks), sum(len(block) for block in blocks)

    def _run_once(self, function: Function) -> bool:
        """One sweep over the pass list, appending to the current scope."""
        changed = False
        tracer = current_tracer()
        for pass_ in self._passes:
            if self.collect_ir_stats or tracer.enabled:
                blocks_before, instrs_before = self._ir_size(function)
            start = time.perf_counter()
            result = pass_.run(function)
            timing = PassTiming(pass_.name, time.perf_counter() - start,
                                result.changed)
            if self.collect_ir_stats or tracer.enabled:
                timing.blocks_before = blocks_before
                timing.instructions_before = instrs_before
                timing.blocks_after, timing.instructions_after = \
                    self._ir_size(function)
            self.timings.append(timing)
            self.cumulative_timings.append(timing)
            if tracer.enabled:
                emit_pass_timing(timing, tracer)
            record_pass_seconds(timing.name, timing.seconds)
            changed |= result.changed
            if result.changed:
                # The pass may have rewritten operands in place, which
                # the divergence memo's fingerprint cannot see.
                invalidate_divergence(function)
            if self.verify:
                try:
                    verify_function(function)
                except Exception as exc:
                    raise RuntimeError(
                        f"IR verification failed after pass "
                        f"{pass_.name!r}") from exc
            if self.verify_after_each is not None:
                self.verify_after_each(pass_.name, function)
            if self.lint_after_each is not None:
                self.lint_after_each(pass_.name, function)
            if self.validate_melds is not None:
                self.validate_melds(pass_.name, function, result)
        return changed

    def run(self, function: Function) -> bool:
        """Run each pass once, in order.  Returns True if any changed IR."""
        self.timings = []
        return self._run_once(function)

    def run_to_fixpoint(self, function: Function, max_iterations: int = 32) -> bool:
        """Repeat the whole pipeline until nothing changes.

        All iterations share one timing scope: after the call,
        ``timings`` holds every pass execution of this invocation.
        """
        self.timings = []
        any_change = False
        iteration_start = 0
        for _ in range(max_iterations):
            iteration_start = len(self.timings)
            if not self._run_once(function):
                return any_change
            any_change = True
        unstable = sorted({t.name for t in self.timings[iteration_start:]
                           if t.changed})
        raise FixpointError(function.name, max_iterations, unstable)

    @property
    def total_seconds(self) -> float:
        """Seconds spent in the most recent run()/run_to_fixpoint()."""
        return sum(t.seconds for t in self.timings)

    @property
    def cumulative_seconds(self) -> float:
        """Seconds spent across every invocation of this pipeline object."""
        return sum(t.seconds for t in self.cumulative_timings)

    def trace_events(self) -> List[Dict[str, object]]:
        """The current scope's timings as JSON-serializable events.

        Thin alias of :func:`repro.obs.pass_timing_events`.
        """
        return pass_timing_events(self.timings)
