"""Speculation (if-conversion): flatten tiny hammocks into ``select``s.

ROCm HIPCC "applied if-conversion aggressively", which in the paper's
bitonic case re-predicated the instructions CFM's unpredication had split
out (§IV-G, §VI-C).  This pass reproduces that behaviour: side-effect-free
diamonds and triangles whose arms are small enough are collapsed, with φ
nodes replaced by ``select``.

It is also the ablation knob for studying the unpredication interaction
(the `benchmarks/` ablations run CFM with and without it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Phi, Select


#: arms larger than this stay branches (mirrors LLVM's speculation cost cap)
DEFAULT_MAX_SPECULATED = 8


def _speculatable_arm(block: BasicBlock, head: BasicBlock, merge: BasicBlock,
                      limit: int) -> Optional[List[Instruction]]:
    """``block`` qualifies as a hoistable arm of ``head``: single pred,
    single succ to ``merge``, all instructions speculatable."""
    if block.single_pred is not head or block.single_succ is not merge:
        return None
    term = block.terminator
    if not isinstance(term, Branch) or term.is_conditional:
        return None
    body = [i for i in block.instructions if i is not term]
    if len(body) > limit:
        return None
    if any(not i.is_speculatable for i in body):
        return None
    return body


def speculate_hammocks(function: Function,
                       limit: int = DEFAULT_MAX_SPECULATED) -> bool:
    changed = False
    while _speculate_once(function, limit):
        changed = True
    return changed


def _speculate_once(function: Function, limit: int) -> bool:
    for head in function.blocks:
        term = head.terminator
        if not isinstance(term, Branch) or not term.is_conditional:
            continue
        true_block, false_block = term.true_successor, term.false_successor
        if true_block is false_block:
            continue

        # Diamond: head -> (T|F) -> merge.
        merge = true_block.single_succ
        if merge is not None and false_block.single_succ is merge:
            true_body = _speculatable_arm(true_block, head, merge, limit)
            false_body = _speculatable_arm(false_block, head, merge, limit)
            if true_body is not None and false_body is not None:
                _flatten(head, term, merge,
                         true_block, true_body, false_block, false_body)
                return True

        # Triangle: head -> T -> merge, head -> merge.
        for arm, other, arm_is_true in ((true_block, false_block, True),
                                        (false_block, true_block, False)):
            if arm.single_succ is other:
                body = _speculatable_arm(arm, head, other, limit)
                if body is None:
                    continue
                _flatten(head, term, other,
                         arm if arm_is_true else None, body if arm_is_true else [],
                         None if arm_is_true else arm, [] if arm_is_true else body)
                return True
    return False


def _flatten(head: BasicBlock, term: Branch, merge: BasicBlock,
             true_block: Optional[BasicBlock], true_body: List[Instruction],
             false_block: Optional[BasicBlock], false_body: List[Instruction]) -> None:
    cond = term.condition
    # Hoist both arms into the head, in order, before the terminator.
    for source, body in ((true_block, true_body), (false_block, false_body)):
        if source is None:
            continue
        for instr in body:
            source._remove_instruction(instr)
            instr.parent = head
            head.insert_before_terminator(instr)

    # φs in the merge become selects keyed on the branch condition.  The
    # merge may have predecessors beyond the flattened arms; those keep
    # their φ entries, only the arm/head entries collapse into the select.
    arm_preds = {b for b in (true_block, false_block, head) if b is not None}
    for phi in list(merge.phis):
        true_value = phi.incoming_for(true_block or head)
        false_value = phi.incoming_for(false_block or head)
        if true_value is false_value:
            merged_value = true_value
        else:
            merged_value = Select(cond, true_value, false_value, phi.name)
            head.insert_before_terminator(merged_value)
        other_incoming = [(v, p) for v, p in phi.incoming if p not in arm_preds]
        if other_incoming:
            for pred in [p for p in phi.incoming_blocks if p in arm_preds]:
                phi.remove_incoming(pred)
            phi.add_incoming(merged_value, head)
        else:
            phi.replace_all_uses_with(merged_value)
            phi.erase_from_parent()

    head.replace_terminator(Branch([merge]))
    for source in (true_block, false_block):
        if source is not None:
            # Arm blocks are now empty (only their unconditional branch
            # remains) and unreachable.
            source.terminator.erase_from_parent()
            source.erase()
