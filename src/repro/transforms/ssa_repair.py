"""SSA dominance repair: re-establish "defs dominate uses" with φ nodes.

CFM's subgraph melding can break SSA form (Figure 4 of the paper: after
melding, a definition from the true path no longer dominates its later
use).  The paper fixes this in ``PreProcess`` by inserting a φ whose
other incoming value is ``undef`` — the value provably flows only along
paths where it was actually defined.

This module implements the general version: for every definition with a
non-dominated use, φs are placed on the iterated dominance frontier of
the defining block, with ``undef`` flowing in from paths that bypass the
definition.  It is CFM's pre-processing step (Algorithm 2) generalized,
and doubles as a utility for any transform that displaces definitions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominators import (
    DominatorTree,
    compute_dominator_tree,
    dominance_frontier,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Undef, Value


def repair_ssa(function: Function) -> bool:
    """Fix all def-use dominance violations.  Returns True if changed."""
    changed = False
    # Recompute analyses once; φ insertion does not change the CFG.
    dt = compute_dominator_tree(function)
    frontier = dominance_frontier(function, dt)
    for block in function.blocks:
        for instr in block.instructions:
            if instr.type.is_void or not instr.is_used:
                continue
            if _has_violation(dt, instr):
                _repair_definition(function, dt, frontier, instr)
                changed = True
    return changed


def _has_violation(dt: DominatorTree, instr: Instruction) -> bool:
    for user, index in instr.uses:
        if not isinstance(user, Instruction) or user.parent is None:
            continue
        use_index = index if isinstance(user, Phi) else None
        if not dt.instruction_dominates(instr, user, use_index):
            return True
    return False


def _repair_definition(function: Function, dt: DominatorTree,
                       frontier: Dict[BasicBlock, Set[BasicBlock]],
                       definition: Instruction) -> None:
    """Single-definition SSA reconstruction with undef elsewhere."""
    def_block = definition.parent

    # Iterated dominance frontier of the defining block.
    idf: Set[BasicBlock] = set()
    work = [def_block]
    while work:
        block = work.pop()
        for candidate in frontier.get(block, ()):  # DF may lack new blocks
            if candidate not in idf:
                idf.add(candidate)
                work.append(candidate)

    # One φ per join block, wired lazily.
    phis: Dict[BasicBlock, Phi] = {}
    for join in idf:
        phi = Phi(definition.type, definition.name or "ssa")
        join.insert_after_phis(phi)
        phis[join] = phi

    def available_at_end(block: BasicBlock) -> Value:
        """The reaching value of ``definition`` at the end of ``block``."""
        node: Optional[BasicBlock] = block
        while node is not None:
            if node in phis:
                return phis[node]
            if node is def_block:
                return definition
            node = dt.idom(node) if dt.contains(node) else None
        return Undef(definition.type)

    for join, phi in phis.items():
        for pred in join.preds:
            phi.add_incoming(available_at_end(pred), pred)

    def available_for_use(user: Instruction, index: int) -> Value:
        if isinstance(user, Phi):
            return available_at_end(user.incoming_blocks[index])
        block = user.parent
        if block is def_block:
            instrs = block.instructions
            if instrs.index(definition) < instrs.index(user):
                return definition
        if block in phis:
            return phis[block]
        parent = dt.idom(block) if dt.contains(block) else None
        return available_at_end(parent) if parent is not None else Undef(definition.type)

    for user, index in definition.uses:
        if not isinstance(user, Instruction) or user in phis.values():
            continue
        use_index = index if isinstance(user, Phi) else None
        if dt.instruction_dominates(definition, user, use_index):
            continue
        user.set_operand(index, available_for_use(user, index))

    # Drop the φs nothing ended up using (keeps IR tidy without a DCE run).
    for phi in phis.values():
        _erase_if_dead(phi)


def _erase_if_dead(phi: Phi) -> None:
    users = set(u for u, _ in phi.uses)
    if users - {phi}:
        return
    # A dead φ may still feed itself (loop-header φ whose only use is its
    # own back-edge incoming).  Detach the self-references through the
    # operand API — not by editing the use list directly, which would
    # leave operand slots pointing at the φ and blow up the use-list
    # bookkeeping when erase_from_parent() drops the operands.
    for index, op in enumerate(list(phi.operands)):
        if op is phi:
            phi.set_operand(index, Undef(phi.type))
    phi.erase_from_parent()
