"""Standard transformation passes — the ``-O3`` substrate CFM sits on.

The paper inserts CFM into the ROCm HIPCC pipeline after ``-O3`` device
IR generation (§V-A); :func:`o3_pipeline` reproduces the relevant slice
of that pipeline (folding, unrolling, CFG cleanup, if-conversion) and
:func:`optimize` drives it to a fixpoint.
"""

from .pass_manager import (
    AfterPassHook,
    CallablePass,
    FixpointError,
    FunctionPass,
    Pass,
    PassPipeline,
    PassResult,
    PassTiming,
    ValidateMeldsHook,
    as_pass,
)
from .dce import eliminate_dead_code
from .constfold import fold_constants
from .cse import eliminate_common_subexpressions
from .simplifycfg import (
    fold_redundant_branches,
    merge_straightline_blocks,
    remove_forwarding_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
    simplify_cfg,
)
from .ssa_repair import repair_ssa
from .clone import ClonedSubgraph, clone_blocks
from .unroll import (
    UnrollLimits,
    compute_trip_count,
    unroll_loop,
    unroll_loops,
    unroll_partial,
)
from .speculate import speculate_hammocks
from .licm import hoist_loop_invariants

__all__ = [
    "AfterPassHook", "CallablePass", "FixpointError", "FunctionPass",
    "Pass", "PassPipeline", "PassResult", "PassTiming", "ValidateMeldsHook",
    "as_pass",
    "eliminate_dead_code", "fold_constants",
    "eliminate_common_subexpressions",
    "fold_redundant_branches", "merge_straightline_blocks",
    "remove_forwarding_blocks", "remove_trivial_phis",
    "remove_unreachable_blocks", "simplify_cfg",
    "repair_ssa",
    "ClonedSubgraph", "clone_blocks",
    "UnrollLimits", "compute_trip_count", "unroll_loop", "unroll_loops",
    "unroll_partial",
    "speculate_hammocks", "hoist_loop_invariants",
    "o3_pipeline", "optimize", "late_pipeline",
]


def o3_pipeline(unroll: bool = True, speculate: bool = True,
                verify: bool = False,
                collect_ir_stats: bool = False) -> PassPipeline:
    """The baseline optimization pipeline (HIPCC ``-O3`` stand-in)."""
    pipeline = PassPipeline(verify=verify, collect_ir_stats=collect_ir_stats)
    pipeline.add("constfold", fold_constants)
    pipeline.add("simplifycfg", simplify_cfg)
    pipeline.add("licm", hoist_loop_invariants)
    if unroll:
        pipeline.add("unroll", unroll_loops)
    if speculate:
        pipeline.add("speculate", speculate_hammocks)
    pipeline.add("constfold2", fold_constants)
    pipeline.add("cse", eliminate_common_subexpressions)
    pipeline.add("simplifycfg2", simplify_cfg)
    pipeline.add("dce", eliminate_dead_code)
    return pipeline


def late_pipeline(collect_ir_stats: bool = False,
                  verify: bool = False,
                  verify_after_each=None) -> PassPipeline:
    """The "rest of the compilation flow" after a divergence-reduction
    pass: late SimplifyCFG and the aggressive if-conversion that §IV-G
    notes re-predicates pure unpredicated blocks, then DCE.  Shared by
    the evaluation runner, the facade and the difftest oracle so every
    client sees the identical §V-A pipeline."""
    return PassPipeline([
        ("late-simplifycfg", simplify_cfg),
        ("late-speculate", speculate_hammocks),
        ("late-simplifycfg2", simplify_cfg),
        ("late-dce", eliminate_dead_code),
    ], verify=verify, collect_ir_stats=collect_ir_stats,
        verify_after_each=verify_after_each)


def optimize(function, unroll: bool = True, speculate: bool = True,
             verify: bool = False, collect_ir_stats: bool = False) -> "PassPipeline":
    """Run the O3 pipeline to a fixpoint; returns the pipeline (timings)."""
    pipeline = o3_pipeline(unroll=unroll, speculate=speculate, verify=verify,
                           collect_ir_stats=collect_ir_stats)
    pipeline.run_to_fixpoint(function)
    return pipeline
