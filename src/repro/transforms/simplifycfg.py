"""SimplifyCFG: the standard CFG cleanup bundle.

CFM's code generation intentionally leaves redundancies behind —
conditional branches with identical successors, forwarding blocks from
region simplification, duplicate/trivial φs — and relies on "LLVM's
built-in passes (such as the SimplifyCFG pass)" to clean up (§IV-F).
This pass implements the cleanups that matter here:

* unreachable-block removal,
* ``br %c, %x, %x``  →  ``br %x``,
* merging single-successor/single-predecessor block pairs,
* removal of empty forwarding blocks,
* removal of trivial φ nodes.

Each cleanup preserves semantics on its own and the pass iterates them to
a fixpoint.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.cfg import reachable_blocks
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Phi
from repro.ir.values import Value


def simplify_cfg(function: Function) -> bool:
    changed = False
    while _simplify_once(function):
        changed = True
    return changed


def _simplify_once(function: Function) -> bool:
    return (
        remove_unreachable_blocks(function)
        or fold_redundant_branches(function)
        or remove_trivial_phis(function)
        or merge_straightline_blocks(function)
        or remove_forwarding_blocks(function)
    )


# ---- individual cleanups -----------------------------------------------------


def remove_unreachable_blocks(function: Function) -> bool:
    reachable = reachable_blocks(function)
    dead = [b for b in function.blocks if b not in reachable]
    if not dead:
        return False
    dead_set = set(dead)
    # Reachable φs may reference dead predecessors.
    for block in reachable:
        for phi in block.phis:
            for pred in list(phi.incoming_blocks):
                if pred in dead_set:
                    phi.remove_incoming(pred)
    # Bulk-delete.  Dead instructions may reference each other in cycles
    # (loop φs), so use edges are severed manually: operand use-list
    # entries are only maintained for *live* values.
    dead_instrs = {i for b in dead for i in b.instructions}
    for block in dead:
        for instr in block.instructions:
            if isinstance(instr, Branch):
                instr._unlink_successors()
            for index, operand in enumerate(instr.operands):
                if operand is None or operand in dead_instrs:
                    continue
                operand._remove_use(instr, index)
            instr._operands = []
            instr._uses = []
            instr.parent = None
        block._instructions = []
        function._remove_block(block)
    return True


def fold_redundant_branches(function: Function) -> bool:
    """``br %c, %x, %x`` → ``br %x`` (CFM post-opt: "removing branches
    with identical successors")."""
    changed = False
    for block in function.blocks:
        term = block.terminator
        if (isinstance(term, Branch) and term.is_conditional
                and term.true_successor is term.false_successor):
            target = term.true_successor
            block.replace_terminator(Branch([target]))
            changed = True
    return changed


def remove_trivial_phis(function: Function) -> bool:
    """Drop φs whose incoming values are all identical (or self)."""
    changed = False
    for block in function.blocks:
        for phi in block.phis:
            unique: List[Value] = []
            for value in phi.incoming_values:
                if value is phi:
                    continue
                if all(value is not u for u in unique):
                    unique.append(value)
            if len(unique) == 1:
                phi.replace_all_uses_with(unique[0])
                phi.erase_from_parent()
                changed = True
    return changed


def merge_straightline_blocks(function: Function) -> bool:
    """Merge ``B -> S`` when B's only successor is S and S's only
    predecessor is B."""
    for block in function.blocks:
        succ = block.single_succ
        term = block.terminator
        if (succ is None or succ is block or succ.single_pred is not block
                or not isinstance(term, Branch) or term.is_conditional):
            continue
        # φs in S have a single incoming value: forward them.
        for phi in succ.phis:
            phi.replace_all_uses_with(phi.incoming_for(block))
            phi.erase_from_parent()
        # Splice S's body into B.
        term.erase_from_parent()
        succ_term = succ.terminator
        if isinstance(succ_term, Branch):
            succ_term._unlink_successors()  # while parent is still S
        for instr in succ.instructions:
            succ._remove_instruction(instr)
            if instr is succ_term and isinstance(instr, Branch):
                block.append(instr)  # relinks edges from B
            else:
                instr.parent = block
                block._instructions.append(instr)
        # Successor φs must now name B as the incoming block.
        for after in block.succs:
            for phi in after.phis:
                phi.replace_incoming_block(succ, block)
        function._remove_block(succ)
        return True
    return False


def remove_forwarding_blocks(function: Function) -> bool:
    """Remove blocks that contain only an unconditional branch."""
    for block in function.blocks:
        if block is function.entry or len(block) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Branch) or term.is_conditional:
            continue
        succ = term.true_successor
        if succ is block or not block.preds:
            continue
        if not _can_forward(block, succ):
            continue
        preds = block.preds
        # Rewire φs in succ: the value that arrived via `block` now arrives
        # directly from each predecessor.
        for phi in succ.phis:
            value = phi.incoming_for(block)
            phi.remove_incoming(block)
            for pred in preds:
                if pred not in phi.incoming_blocks:
                    phi.add_incoming(value, pred)
        term.erase_from_parent()
        for pred in preds:
            pred.terminator.replace_successor(block, succ)
        function._remove_block(block)
        return True
    return False


def _can_forward(block: BasicBlock, succ: BasicBlock) -> bool:
    """Forwarding is safe unless it would create a φ conflict: a pred that
    already reaches ``succ`` directly must supply the same value both ways,
    and duplicate-edge conditional branches keep φs single-valued only if
    the values agree."""
    for phi in succ.phis:
        via_block = phi.incoming_for(block)
        for pred in block.preds:
            if pred in succ.preds and phi.incoming_for(pred) is not via_block:
                return False
    # A conditional branch in a pred pointing at both `block` and `succ`
    # collapses to a duplicate edge, which φ bookkeeping handles only when
    # the above value check passed; nothing more to verify.
    return True
