"""Common-subexpression elimination (dominator-scoped value numbering).

Melded code is full of repeated address arithmetic — both sides of a
divergent branch computed ``gep %base, %tid`` and after melding both
copies land in one block — and the DSL front-end re-emits ``gep`` for
every ``load_at``/``store_at``.  This pass removes pure redundancies the
way LLVM's EarlyCSE does: a pre-order walk of the dominator tree with a
scoped hash table of available expressions.

Only speculatable, side-effect-free instructions participate; loads are
*not* value-numbered (no alias analysis here, and the SIMT simulator's
shared memory is mutated cross-lane).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.dominators import compute_dominator_tree
from repro.ir.function import Function
from repro.ir.instructions import Call, GetElementPtr, Instruction, Phi, Select
from repro.ir.values import Constant, Undef, Value


def _expression_key(instr: Instruction) -> Optional[Tuple]:
    """Hashable identity of a pure expression, or None if not eligible."""
    if isinstance(instr, Phi) or instr.is_terminator:
        return None
    if not instr.is_speculatable:
        return None
    if isinstance(instr, Call) and not instr.is_pure_intrinsic:
        return None
    operands = []
    for operand in instr.operands:
        if isinstance(operand, Undef):
            return None  # undef is not a stable value
        if isinstance(operand, Constant):
            operands.append(("const", operand.type, operand.value))
        else:
            operands.append(("val", id(operand)))
    return (instr.operand_signature(), tuple(operands))


def eliminate_common_subexpressions(function: Function) -> bool:
    """Scoped-hash-table CSE over the dominator tree.  Returns True if
    any instruction was replaced."""
    dt = compute_dominator_tree(function)
    changed = False

    # Iterative pre-order; the available-expression table is a chain of
    # dict scopes, one per dominator-tree level.
    Scope = Dict[Tuple, Instruction]
    work: List[Tuple[object, List[Scope]]] = [(dt.root, [{}])]
    while work:
        block, scopes = work.pop()
        scope = scopes[-1]
        for instr in block.instructions:
            key = _expression_key(instr)
            if key is None:
                continue
            existing = _lookup(scopes, key)
            if existing is not None:
                instr.replace_all_uses_with(existing)
                instr.erase_from_parent()
                changed = True
            else:
                scope[key] = instr
        for child in dt.children(block):
            work.append((child, scopes + [{}]))
    return changed


def _lookup(scopes: List[Dict], key: Tuple) -> Optional[Instruction]:
    for scope in reversed(scopes):
        hit = scope.get(key)
        if hit is not None:
            return hit
    return None
