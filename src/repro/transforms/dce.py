"""Dead-code elimination.

Removes instructions whose results are unused and whose execution has no
side effects.  Runs to a local fixpoint so chains of dead computations
(including the dead ``select``s CFM's post-optimization step wants gone,
§IV-F) disappear in one call.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi


def _is_trivially_dead(instr: Instruction) -> bool:
    if instr.is_used:
        return False
    if instr.is_terminator or instr.has_side_effects:
        return False
    if instr.may_read_memory:
        # Dead loads are removable: no side effects in our memory model.
        return True
    return True


def eliminate_dead_code(function: Function) -> bool:
    """Iteratively remove dead instructions; returns True if any removed."""
    changed = False
    work = [i for b in function.blocks for i in b.instructions]
    while work:
        instr = work.pop()
        if instr.parent is None or not _is_trivially_dead(instr):
            continue
        operands = [op for op in instr.operands if isinstance(op, Instruction)]
        instr.erase_from_parent()
        changed = True
        work.extend(operands)  # operands may now be dead too
    return changed
