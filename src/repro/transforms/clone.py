"""CFG subgraph cloning with operand remapping.

Used by the loop unroller (each unrolled iteration is a clone of the loop
body) and available to any transform that duplicates regions.  Cloning is
two-phase, exactly like CFM's own code generation (§IV-D): first clone
every instruction, recording old→new in a value map, then patch operands
and φ incoming blocks through the map.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Phi
from repro.ir.values import Value


class ClonedSubgraph:
    """Result of :func:`clone_blocks`: the block and value maps."""

    def __init__(self, block_map: Dict[BasicBlock, BasicBlock],
                 value_map: Dict[Value, Value]) -> None:
        self.block_map = block_map
        self.value_map = value_map

    def block(self, original: BasicBlock) -> BasicBlock:
        return self.block_map[original]

    def value(self, original: Value) -> Value:
        """Mapped value; identity for values defined outside the clone."""
        return self.value_map.get(original, original)


def clone_blocks(
    function: Function,
    blocks: List[BasicBlock],
    suffix: str,
    extra_value_map: Optional[Dict[Value, Value]] = None,
    insert_after: Optional[BasicBlock] = None,
) -> ClonedSubgraph:
    """Clone ``blocks`` into ``function``.

    ``extra_value_map`` pre-seeds operand remapping (the unroller maps the
    loop-header φs to the current iteration's values).  Branch targets
    inside the cloned set are redirected to the clones; targets outside
    are left alone.  φ incoming blocks are remapped likewise; incoming
    entries from predecessors outside the cloned set are *dropped* (the
    caller wires external entries itself).
    """
    block_set = set(blocks)
    value_map: Dict[Value, Value] = dict(extra_value_map or {})
    block_map: Dict[BasicBlock, BasicBlock] = {}

    anchor = insert_after
    for block in blocks:
        clone = function.add_block(f"{block.name}.{suffix}", after=anchor)
        anchor = clone
        block_map[block] = clone

    # Phase 1: clone instructions, building the value map.
    cloned_pairs: List[Tuple[Instruction, Instruction]] = []
    for block in blocks:
        clone_block = block_map[block]
        for instr in block.instructions:
            clone = instr.clone()
            clone.name = instr.name
            if isinstance(clone, Branch):
                # Append after remapping (phase 2) so edges link correctly;
                # stage it detached for now.
                pass
            cloned_pairs.append((instr, clone))
            value_map[instr] = clone

    # Phase 2: remap operands, successors and φ incoming blocks; insert.
    for original, clone in cloned_pairs:
        if isinstance(clone, Phi):
            for pred in clone.incoming_blocks:
                if pred in block_set:
                    clone.replace_incoming_block(pred, block_map[pred])
                else:
                    clone.remove_incoming(pred)
            for i, value in enumerate(clone.incoming_values):
                mapped = value_map.get(value)
                if mapped is not None:
                    clone.set_operand(i, mapped)
        else:
            for i, operand in enumerate(clone.operands):
                mapped = value_map.get(operand)
                if mapped is not None:
                    clone.set_operand(i, mapped)
        if isinstance(clone, Branch):
            for i, succ in enumerate(clone.successors):
                if succ in block_set:
                    clone.set_successor(i, block_map[succ])
        target = block_map[original.parent]
        target.append(clone)

    return ClonedSubgraph(block_map, value_map)
