"""Constant folding + trivial algebraic simplification.

Folding matters for the reproduction because loop unrolling exposes
constant induction-variable values; folding them turns the unrolled
bitonic/PCM bodies into the constant-index shared-memory code whose
isomorphic repetitions CFM melds.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    IntrinsicName,
    Opcode,
    Select,
    UnaryOp,
)
from repro.ir.scalars import EvalError, eval_binary, eval_cast, eval_fcmp, eval_icmp
from repro.ir.values import Constant, Undef, Value


def _const(value: Value) -> Optional[Constant]:
    return value if isinstance(value, Constant) and not isinstance(value, Undef) \
        else None


def _fold_instruction(instr: Instruction) -> Optional[Value]:
    """The folded replacement value, or None if not foldable."""
    if isinstance(instr, BinaryOp):
        lhs, rhs = _const(instr.lhs), _const(instr.rhs)
        if lhs is not None and rhs is not None:
            try:
                return Constant(instr.type,
                                eval_binary(instr.opcode, lhs.value, rhs.value,
                                            instr.type))
            except EvalError:
                return None
        return _fold_algebraic(instr)
    if isinstance(instr, ICmp):
        lhs, rhs = _const(instr.lhs), _const(instr.rhs)
        if lhs is not None and rhs is not None:
            return Constant(instr.type,
                            eval_icmp(instr.predicate, lhs.value, rhs.value,
                                      instr.lhs.type))
        return None
    if isinstance(instr, FCmp):
        lhs, rhs = _const(instr.lhs), _const(instr.rhs)
        if lhs is not None and rhs is not None:
            return Constant(instr.type,
                            eval_fcmp(instr.predicate, lhs.value, rhs.value))
        return None
    if isinstance(instr, Select):
        cond = _const(instr.condition)
        if cond is not None:
            return instr.true_value if cond.value else instr.false_value
        if instr.true_value is instr.false_value:
            return instr.true_value
        return None
    if isinstance(instr, Cast):
        value = _const(instr.value)
        if value is not None:
            try:
                return Constant(instr.type,
                                eval_cast(instr.opcode, value.value,
                                          instr.value.type, instr.type))
            except EvalError:
                return None
        return None
    if isinstance(instr, UnaryOp):
        value = _const(instr.operand(0))
        if value is not None:
            return Constant(instr.type, -value.value)
        return None
    if isinstance(instr, Call) and instr.callee in (IntrinsicName.MIN,
                                                    IntrinsicName.MAX):
        lhs, rhs = _const(instr.args[0]), _const(instr.args[1])
        if lhs is not None and rhs is not None:
            value = (min if instr.callee == IntrinsicName.MIN else max)(
                lhs.value, rhs.value)
            return Constant(instr.type, value)
        return None
    return None


def _fold_algebraic(instr: BinaryOp) -> Optional[Value]:
    """x+0, x*1, x*0, x-x, x^x and friends."""
    lhs, rhs = instr.lhs, instr.rhs
    rc = _const(rhs)
    opcode = instr.opcode
    if rc is not None:
        if rc.value == 0 and opcode in (Opcode.ADD, Opcode.SUB, Opcode.OR,
                                        Opcode.XOR, Opcode.SHL, Opcode.LSHR,
                                        Opcode.ASHR):
            return lhs
        if rc.value == 1 and opcode in (Opcode.MUL, Opcode.SDIV, Opcode.UDIV):
            return lhs
        if rc.value == 0 and opcode in (Opcode.MUL, Opcode.AND):
            return Constant(instr.type, 0)
    lc = _const(lhs)
    if lc is not None:
        if lc.value == 0 and opcode in (Opcode.ADD, Opcode.OR, Opcode.XOR):
            return rhs
        if lc.value == 0 and opcode in (Opcode.MUL, Opcode.AND, Opcode.SHL,
                                        Opcode.LSHR, Opcode.ASHR,
                                        Opcode.UDIV, Opcode.SDIV):
            return Constant(instr.type, 0)
        if lc.value == 1 and opcode == Opcode.MUL:
            return rhs
    if lhs is rhs:
        if opcode in (Opcode.SUB, Opcode.XOR):
            return Constant(instr.type, 0)
        if opcode in (Opcode.AND, Opcode.OR):
            return lhs
    return None


def fold_constants(function: Function) -> bool:
    """Fold to a fixpoint; also folds constant-condition branches into
    unconditional ones (the edge cleanup is left to SimplifyCFG)."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for instr in block.instructions:
                if isinstance(instr, Branch):
                    if instr.is_conditional:
                        cond = _const(instr.condition)
                        if cond is not None:
                            _fold_branch(block, instr, bool(cond.value))
                            progress = changed = True
                    continue
                replacement = _fold_instruction(instr)
                if replacement is None:
                    continue
                instr.replace_all_uses_with(replacement)
                instr.erase_from_parent()
                progress = changed = True
    return changed


def _fold_branch(block, branch: Branch, taken: bool) -> None:
    kept = branch.true_successor if taken else branch.false_successor
    dropped = branch.false_successor if taken else branch.true_successor
    if dropped is not kept:
        for phi in dropped.phis:
            phi.remove_incoming(block)
    block.replace_terminator(Branch([kept]))
