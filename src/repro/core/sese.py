"""SESE subgraph sequences and region simplification (§IV-A, §IV-B).

Within a meldable divergent region ``(E, X)``, each of the two paths
(``B_T -> X`` and ``B_F -> X``) decomposes into an ordered sequence of
single-entry single-exit subgraphs (Definition 3), ordered by the
post-dominance relation of their entries (§IV-C).  The decomposition
walks the immediate-post-dominator chain of the path's first block: the
chain nodes are the cut points, and whatever lies between two consecutive
cut points is one subgraph (a single block, or a region).

``Simplify`` (Algorithm 1) normalizes each multi-block subgraph to have a
*unique exit block*: when several blocks inside the subgraph branch to
the chain successor, a fresh exit block is inserted to collect them —
the melder relies on exits being unique (its ``B_T'``/``B_F'`` blocks
take over the single outgoing edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.analysis.cfg import reachable_from
from repro.analysis.dominators import (
    DominatorTree,
    compute_postdominator_tree,
    immediate_postdominator,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch


@dataclass
class SESESubgraph:
    """One subgraph on a divergent path.

    ``entry`` is the first block, ``exit`` the unique last block (after
    simplification), ``target`` the first block *outside* the subgraph
    (the next chain node).  For single-block subgraphs
    ``entry is exit``.
    """

    entry: BasicBlock
    exit: BasicBlock
    target: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def is_single_block(self) -> bool:
        return len(self.blocks) == 1

    @property
    def external_preds(self) -> List[BasicBlock]:
        return [p for p in self.entry.preds if p not in self.blocks]

    def __repr__(self) -> str:
        return (f"<SESE {self.entry.name}..{self.exit.name} "
                f"({len(self.blocks)} blocks) -> {self.target.name}>")


def path_subgraphs(
    first: BasicBlock,
    region_exit: BasicBlock,
    pdt: DominatorTree,
) -> Optional[List[SESESubgraph]]:
    """Decompose the path ``first -> region_exit`` into ordered SESE
    subgraphs.  Returns ``None`` when the path's post-dominator chain does
    not reach ``region_exit`` (malformed candidate)."""
    if first is region_exit:
        return []  # empty path: the branch edge goes straight to the exit
    chain: List[BasicBlock] = [first]
    node = first
    for _ in range(10_000):
        node = immediate_postdominator(pdt, node)
        if node is None:
            return None
        chain.append(node)
        if node is region_exit:
            break
    else:  # pragma: no cover - IPDOM chains are bounded by block count
        return None

    subgraphs: List[SESESubgraph] = []
    for current, nxt in zip(chain, chain[1:]):
        blocks = reachable_from(current, stop=nxt)
        exit_blocks = sorted(
            {b for b in blocks for s in b.succs if s is nxt},
            key=lambda b: b.name,
        )
        if len(blocks) == 1:
            subgraphs.append(SESESubgraph(current, current, nxt, blocks))
        else:
            exit_block = exit_blocks[0] if len(exit_blocks) == 1 else None
            subgraphs.append(SESESubgraph(current, exit_block, nxt, blocks))
    return subgraphs


def simplify_path_subgraphs(
    function: Function,
    subgraphs: List[SESESubgraph],
) -> bool:
    """``Simplify``: give every multi-exit subgraph a unique exit block.

    Inserts a collector block per offending subgraph and updates the
    subgraph descriptors in place.  Returns True if the CFG changed (the
    caller must then recompute its analyses)."""
    changed = False
    for subgraph in subgraphs:
        # Already simple: a unique exit block whose *only* successor is the
        # target (the melder requires an unconditional single exit edge).
        if (subgraph.exit is not None
                and subgraph.exit.single_succ is subgraph.target
                and sum(1 for b in subgraph.blocks
                        for s in b.succs if s is subgraph.target) == 1):
            continue
        collector = function.add_block(f"{subgraph.entry.name}.exit")
        collector.append(Branch([subgraph.target]))
        for block in sorted(subgraph.blocks, key=lambda b: b.name):
            term = block.terminator
            if isinstance(term, Branch):
                term.replace_successor(subgraph.target, collector)
        for phi in subgraph.target.phis:
            incoming_from_subgraph = [
                (v, p) for v, p in phi.incoming if p in subgraph.blocks
            ]
            if not incoming_from_subgraph:
                continue
            if len(incoming_from_subgraph) > 1:
                # Distinct values arriving from multiple internal exits
                # need a φ in the collector.
                from repro.ir.instructions import Phi

                collected = Phi(phi.type, phi.name or "exitphi")
                collector.insert_after_phis(collected)
                for value, pred in incoming_from_subgraph:
                    collected.add_incoming(value, pred)
                    phi.remove_incoming(pred)
                phi.add_incoming(collected, collector)
            else:
                value, pred = incoming_from_subgraph[0]
                phi.remove_incoming(pred)
                phi.add_incoming(value, collector)
        subgraph.blocks.add(collector)
        subgraph.exit = collector
        changed = True
    return changed
