"""Subgraph melding code generation (Algorithm 2, §IV-D).

Given a meldable divergent region with condition ``C`` and a chosen
subgraph pair ``(S_T, S_F)`` with ordered block mapping ``O``, this module
rewrites the CFG so both subgraphs become one:

1. one *melded block* per mapped block pair;
2. φ nodes are **copied** (never merged — ``select``s cannot precede φs)
   with incoming values remapped and ``undef`` flowing in from the other
   path's entry edges;
3. aligned instructions (I-I) are cloned once; operand mismatches are
   reconciled with ``select C, opT, opF``; unaligned instructions (I-G)
   are cloned as-is and tagged with their side for unpredication;
4. internal branches keep their (isomorphic) shape, selecting between the
   two conditions when they differ;
5. the melded exit ends in ``br C, B_T', B_F'`` — two fresh
   successor-distinguisher blocks that jump to the original targets and
   keep downstream φs well-formed;
6. external uses of the original instructions are rerouted to their
   melded counterparts; dominance violations introduced by the move (the
   paper's Figure 4) are repaired afterwards by
   :func:`repro.transforms.ssa_repair.repair_ssa`, which inserts exactly
   the ``φ [v, true-pred], [undef, bypass]`` nodes ``PreProcess`` would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.analysis.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Phi, Select
from repro.ir.values import Constant, Undef, Value, const_bool

from .instr_align import InstructionPair, align_instructions
from .meldable import MeldableRegion
from .sese import SESESubgraph
from .subgraph_align import SubgraphPair


class Side(Enum):
    """Provenance of a melded instruction."""

    BOTH = "both"
    TRUE = "true"
    FALSE = "false"


@dataclass
class MeldResult:
    """What the melder produced — consumed by unpredication and metrics."""

    entry: BasicBlock
    melded_blocks: List[BasicBlock]
    #: provenance of every cloned non-φ, non-terminator instruction
    sides: Dict[Instruction, Side]
    condition: Value
    selects_inserted: int = 0
    instructions_melded: int = 0
    instructions_unaligned: int = 0
    #: names of guard blocks unpredication split out for *side-effecting*
    #: runs (filled by :func:`repro.core.unpredication.unpredicate`; the
    #: lint meld-legality audit checks each stays behind its guard)
    guarded_side_effect_blocks: List[str] = field(default_factory=list)


def _values_equal(a: Value, b: Value) -> bool:
    if a is b:
        return True
    if isinstance(a, Constant) and isinstance(b, Constant):
        return a == b
    return False


class Melder:
    """One melding operation on one subgraph pair."""

    def __init__(
        self,
        function: Function,
        region: MeldableRegion,
        pair: SubgraphPair,
        latency: LatencyModel = DEFAULT_LATENCY_MODEL,
    ) -> None:
        self.function = function
        self.region = region
        self.pair = pair
        self.latency = latency
        self.condition = region.condition
        self.operand_map: Dict[Value, Value] = {}
        self.block_map: Dict[BasicBlock, BasicBlock] = {}
        self.sides: Dict[Instruction, Side] = {}
        # Deferred operand fixups: (melded, original_T, original_F | None)
        self._ii_pairs: List[Tuple[Instruction, Instruction, Instruction]] = []
        self._ig_pairs: List[Tuple[Instruction, Instruction]] = []
        self._phi_clones: List[Tuple[Phi, Phi, SESESubgraph, SESESubgraph]] = []
        self._branch_conditions: List[Tuple[Branch, Value, Value]] = []
        self._selects = 0

    # ---- public API --------------------------------------------------------

    def meld(self) -> MeldResult:
        s_t, s_f = self.pair.true_subgraph, self.pair.false_subgraph
        mapping = self.pair.mapping

        # Phase 0: one melded block per pair.  In a case-② (partial)
        # mapping one side of most pairs is None; the melded block takes
        # the shape of the structure (region) side.
        anchor = self.region.entry
        for bt, bf in mapping:
            name = f"{(bt or bf).name}.m.{(bf or bt).name}"
            melded = self.function.add_block(name, after=anchor)
            anchor = melded
            if bt is not None:
                self.block_map[bt] = melded
            if bf is not None:
                self.block_map[bf] = melded

        # Phase 1: clone φs and aligned instructions (operands unresolved).
        for bt, bf in mapping:
            self._clone_phis(bt, bf, s_t, s_f)
            self._clone_instructions(bt, bf)
        for bt, bf in mapping:
            self._build_terminator(bt, bf, s_t, s_f)

        # Phase 2: resolve operands through the operand map.
        self._set_operands()

        # Phase 3: rewire the CFG around the melded subgraph.  Both entry
        # edges land on the structure side's entry (for a partial meld the
        # single-block path is routed through the region from its entry).
        if self.pair.partial_region_side == "false":
            structure_entry = mapping[0][1]
        elif self.pair.partial_region_side == "true":
            structure_entry = mapping[0][0]
        else:
            structure_entry = mapping[0][0]
        melded_entry = self.block_map[structure_entry]
        self._redirect_external_edges(s_t, melded_entry)
        self._redirect_external_edges(s_f, melded_entry)
        self._reroute_external_uses(s_t, s_f)

        melded_blocks = []
        for block in self.block_map.values():
            if block not in melded_blocks:
                melded_blocks.append(block)
        matched = sum(1 for i, s in self.sides.items() if s is Side.BOTH)
        unaligned = len(self.sides) - matched
        return MeldResult(
            entry=melded_entry,
            melded_blocks=melded_blocks,
            sides=dict(self.sides),
            condition=self.condition,
            selects_inserted=self._selects,
            instructions_melded=matched,
            instructions_unaligned=unaligned,
        )

    # ---- phase 1: cloning ------------------------------------------------------

    def _clone_phis(self, bt: Optional[BasicBlock], bf: Optional[BasicBlock],
                    s_t: SESESubgraph, s_f: SESESubgraph) -> None:
        melded = self.block_map[bt if bt is not None else bf]
        true_phis = [(p, s_t, s_f) for p in bt.phis] if bt is not None else []
        false_phis = [(p, s_f, s_t) for p in bf.phis] if bf is not None else []
        for phi, own, other in true_phis + false_phis:
            clone = Phi(phi.type, phi.name)
            melded.insert_after_phis(clone)
            self.operand_map[phi] = clone
            self._phi_clones.append((clone, phi, own, other))

    def _clone_instructions(self, bt: Optional[BasicBlock],
                            bf: Optional[BasicBlock]) -> None:
        melded = self.block_map[bt if bt is not None else bf]
        if bt is None or bf is None:
            # Partial meld: the unmatched structure block's instructions
            # all become gaps of their own side (guarded by unpredication
            # when they have side effects).
            lone_block = bt if bt is not None else bf
            side = Side.TRUE if bt is not None else Side.FALSE
            from .profitability import meldable_instructions

            for original in meldable_instructions(lone_block):
                clone = original.clone()
                clone.name = original.name
                melded.append(clone)
                self.operand_map[original] = clone
                self.sides[clone] = side
                self._ig_pairs.append((clone, original))
            return
        for pair in align_instructions(bt, bf, self.latency):
            if pair.is_match:
                clone = pair.true_instr.clone()
                clone.name = pair.true_instr.name
                melded.append(clone)
                self.operand_map[pair.true_instr] = clone
                self.operand_map[pair.false_instr] = clone
                self.sides[clone] = Side.BOTH
                self._ii_pairs.append((clone, pair.true_instr, pair.false_instr))
            else:
                original = pair.lone
                clone = original.clone()
                clone.name = original.name
                melded.append(clone)
                self.operand_map[original] = clone
                self.sides[clone] = Side.TRUE if pair.from_true_path else Side.FALSE
                self._ig_pairs.append((clone, original))

    def _build_terminator(self, bt: Optional[BasicBlock],
                          bf: Optional[BasicBlock],
                          s_t: SESESubgraph, s_f: SESESubgraph) -> None:
        # In a partial (case ②) meld the *region* side owns the control
        # structure for every pair — including the chosen pair, whose
        # single-block partner contributes instructions but no shape.
        region_side = self.pair.partial_region_side
        if region_side == "true":
            structure, structure_is_true = bt, True
        elif region_side == "false":
            structure, structure_is_true = bf, False
        else:
            structure = bt if bt is not None else bf
            structure_is_true = bt is not None
        melded = self.block_map[structure]
        structure_sub = s_t if structure_is_true else s_f

        if structure is structure_sub.exit:
            # Successor-distinguisher blocks B_T' / B_F'.  φs in the two
            # targets referenced the subgraphs' exit blocks (for a partial
            # meld the other side's exit is its single block, which may be
            # paired elsewhere), so redirect by subgraph exit, not by pair.
            bt_prime = self.function.add_block(f"{melded.name}.t", after=melded)
            bf_prime = self.function.add_block(f"{melded.name}.f", after=bt_prime)
            bt_prime.append(Branch([s_t.target]))
            bf_prime.append(Branch([s_f.target]))
            melded.append(Branch([bt_prime, bf_prime], self.condition))
            for phi in s_t.target.phis:
                phi.replace_incoming_block(s_t.exit, bt_prime)
            for phi in s_f.target.phis:
                phi.replace_incoming_block(s_f.exit, bf_prime)
            return

        if region_side is not None:
            # Partial meld: the structure's branch shape is kept; the
            # single-block side's lanes are steered along the fixed route
            # (select C, cond, <route constant>).
            term = structure.terminator
            assert isinstance(term, Branch)
            successors = [self.block_map[s] for s in term.successors]
            if term.is_conditional:
                branch = Branch(successors, term.condition)  # placeholder
                melded.append(branch)
                route_index = self.pair.route.get(structure, 0)
                route_const = const_bool(route_index == 0)
                if structure_is_true:
                    self._branch_conditions.append(
                        (branch, term.condition, route_const))
                else:
                    self._branch_conditions.append(
                        (branch, route_const, term.condition))
            else:
                melded.append(Branch(successors))
            return

        term_t, term_f = bt.terminator, bf.terminator
        assert isinstance(term_t, Branch) and isinstance(term_f, Branch)
        successors = [self.block_map[s] for s in term_t.successors]
        for st, sf in zip(term_t.successors, term_f.successors):
            assert self.block_map[st] is self.block_map[sf], \
                "isomorphism must map corresponding successors together"
        if term_t.is_conditional:
            branch = Branch(successors, term_t.condition)  # placeholder cond
            melded.append(branch)
            self._branch_conditions.append(
                (branch, term_t.condition, term_f.condition))
        else:
            melded.append(Branch(successors))

    # ---- phase 2: operand resolution ----------------------------------------------

    def _resolve(self, value: Value) -> Value:
        return self.operand_map.get(value, value)

    def _reconcile(self, melded: Instruction, value_t: Value, value_f: Value) -> Value:
        """The value a melded operand slot takes: shared when the two
        sides agree after mapping, otherwise ``select C, vT, vF``."""
        a, b = self._resolve(value_t), self._resolve(value_f)
        if _values_equal(a, b):
            return a
        select = Select(self.condition, a, b, "msel")
        melded.parent._insert_before(melded, select)
        self.sides[select] = Side.BOTH
        self._selects += 1
        return select

    def _set_operands(self) -> None:
        for melded, instr_t, instr_f in self._ii_pairs:
            for index in range(melded.num_operands):
                value = self._reconcile(melded, instr_t.operand(index),
                                        instr_f.operand(index))
                melded.set_operand(index, value)
        for melded, original in self._ig_pairs:
            for index in range(melded.num_operands):
                melded.set_operand(index, self._resolve(original.operand(index)))
        for branch, cond_t, cond_f in self._branch_conditions:
            value = self._reconcile(branch, cond_t, cond_f)
            branch.set_operand(0, value)
        for clone, phi, own, other in self._phi_clones:
            self._wire_phi(clone, phi, own, other)

    def _wire_phi(self, clone: Phi, phi: Phi, own: SESESubgraph,
                  other: SESESubgraph) -> None:
        melded_entry = self.block_map[own.entry]
        is_entry_phi = clone.parent is melded_entry
        seen: List[BasicBlock] = []
        for value, pred in phi.incoming:
            if pred in own.blocks:
                new_pred = self.block_map[pred]
                new_value = self._resolve(value)
            else:
                new_pred = pred
                new_value = value
            if new_pred in seen:
                continue
            seen.append(new_pred)
            clone.add_incoming(new_value, new_pred)
        if is_entry_phi:
            # Lanes arriving via the other path's entry edges never use
            # this φ's value: undef (paper's PreProcess construction).
            for pred in other.external_preds:
                if pred not in seen:
                    seen.append(pred)
                    clone.add_incoming(Undef(clone.type), pred)

    # ---- phase 3: CFG rewiring ------------------------------------------------------

    def _redirect_external_edges(self, subgraph: SESESubgraph,
                                 melded_entry: BasicBlock) -> None:
        for pred in subgraph.external_preds:
            term = pred.terminator
            assert isinstance(term, Branch)
            term.replace_successor(subgraph.entry, melded_entry)

    def _reroute_external_uses(self, s_t: SESESubgraph, s_f: SESESubgraph) -> None:
        """Uses of original subgraph values from outside the pair now read
        the melded clones."""
        melded_region = set(s_t.blocks) | set(s_f.blocks)
        for original, replacement in list(self.operand_map.items()):
            if not isinstance(original, Instruction):
                continue
            for user, index in original.uses:
                if not isinstance(user, Instruction) or user.parent is None:
                    continue
                if user.parent in melded_region:
                    continue
                if user.parent in self.block_map.values():
                    continue  # melded instructions resolve via the map
                user.set_operand(index, replacement)
