"""Meldable divergent regions and meldable subgraph pairs (Defs. 5 & 6).

A *meldable divergent region* is a region ``(E, X)`` whose entry ends in
a divergent conditional branch and whose two successors do not
post-dominate each other (so both paths contain at least one SESE
subgraph).  Two SESE subgraphs from opposite paths are *meldable* when
they are structurally isomorphic under an **ordered** mapping: entry maps
to entry, and the i-th successor of a block maps to the i-th successor of
its image.  Ordered matching is what lets the melder pick the branch
target by position and select between the two conditions (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.divergence import DivergenceInfo
from repro.analysis.dominators import DominatorTree
from repro.analysis.regions import Region, smallest_region_containing
from repro.ir.block import BasicBlock
from repro.ir.instructions import Branch, Call, Instruction

from .sese import SESESubgraph


@dataclass
class MeldableRegion:
    """A divergent region plus its path decomposition inputs."""

    region: Region
    branch: Branch

    @property
    def entry(self) -> BasicBlock:
        return self.region.entry

    @property
    def exit(self) -> BasicBlock:
        return self.region.exit

    @property
    def condition(self):
        return self.branch.condition

    @property
    def true_first(self) -> BasicBlock:
        return self.branch.true_successor

    @property
    def false_first(self) -> BasicBlock:
        return self.branch.false_successor


def find_meldable_region(
    block: BasicBlock,
    divergence: DivergenceInfo,
    pdt: DominatorTree,
) -> Optional[MeldableRegion]:
    """Definition 5 for the region rooted at ``block``."""
    term = block.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        return None
    if not divergence.has_divergent_branch(block):
        return None
    true_succ, false_succ = term.true_successor, term.false_successor
    if true_succ is false_succ:
        return None
    # Condition 2: neither successor post-dominates the other.
    if pdt.dominates(true_succ, false_succ) or pdt.dominates(false_succ, true_succ):
        return None
    region = smallest_region_containing(block, pdt)
    if region is None:
        return None
    # Both successors must lie inside the region (paths B_T -> X, B_F -> X).
    if true_succ not in region.blocks and true_succ is not region.exit:
        return None
    if false_succ not in region.blocks and false_succ is not region.exit:
        return None
    return MeldableRegion(region, term)


# ---- ordered isomorphism (Definition 6) --------------------------------------


def subgraph_isomorphism(
    s1: SESESubgraph,
    s2: SESESubgraph,
) -> Optional[List[Tuple[BasicBlock, BasicBlock]]]:
    """The ordered block mapping ``O`` of two meldable subgraphs, or
    ``None``.

    Conditions checked (Definition 6 collapses to one uniform rule under
    ordered matching — cases ① ③ directly, case ② is rejected here and
    handled by the caller only if both sides are simple regions of equal
    shape, which this function subsumes):

    * the graphs have the same number of blocks;
    * walking from the entries, i-th successors correspond;
    * exits correspond;
    * the pairing is a bijection.
    """
    if s1.blocks & s2.blocks:
        return None  # overlapping subgraphs can never execute disjointly
    if len(s1.blocks) != len(s2.blocks):
        return None
    mapping: Dict[BasicBlock, BasicBlock] = {}
    reverse: Dict[BasicBlock, BasicBlock] = {}
    work: List[Tuple[BasicBlock, BasicBlock]] = [(s1.entry, s2.entry)]
    order: List[Tuple[BasicBlock, BasicBlock]] = []
    while work:
        a, b = work.pop(0)
        if a in mapping or b in reverse:
            if mapping.get(a) is b and reverse.get(b) is a:
                continue
            return None
        mapping[a] = b
        reverse[b] = a
        order.append((a, b))
        if (a is s1.exit) != (b is s2.exit):
            return None
        succs_a = _internal_successors(a, s1)
        succs_b = _internal_successors(b, s2)
        if succs_a is None or succs_b is None:
            return None
        if len(succs_a) != len(succs_b):
            return None
        work.extend(zip(succs_a, succs_b))
    if len(mapping) != len(s1.blocks):
        return None
    return order


def _internal_successors(block: BasicBlock, subgraph: SESESubgraph):
    """Ordered successor list restricted to the subgraph; the exit block's
    single external edge is dropped (it is handled by the melder's
    ``B_T'``/``B_F'`` machinery); any other external edge disqualifies."""
    term = block.terminator
    if not isinstance(term, Branch):
        return None
    result: List[BasicBlock] = []
    for succ in term.successors:
        if succ in subgraph.blocks:
            result.append(succ)
        elif block is subgraph.exit and succ is subgraph.target:
            continue
        else:
            return None
    return result


@dataclass
class PartialMapping:
    """Case ② of Definition 6: a multi-block (simple-region) subgraph
    melded with a single-block subgraph.

    The single block melds into exactly one block of the region (the
    ``chosen`` one, picked by ``FP_B``); the region's structure is kept,
    and lanes from the single-block path are *routed* through it along a
    fixed entry → chosen → exit path: ``route`` records, for every
    conditional branch on that path, which successor index those lanes
    must take (the melder turns this into ``select C, cond, <const>``).
    """

    #: (region block, single block | None), region pre-order, entry first
    mapping: List[Tuple[BasicBlock, Optional[BasicBlock]]]
    chosen: BasicBlock
    route: Dict[BasicBlock, int]
    #: True when the region subgraph lies on the branch's true path
    region_on_true_path: bool


def region_block_mapping(
    region_sub: SESESubgraph,
    block_sub: SESESubgraph,
    region_on_true_path: bool,
) -> Optional[PartialMapping]:
    """Build the case-② mapping, or ``None`` when the pair is unsuitable
    (overlap, barriers, φs in the single block, or no usable route)."""
    if not block_sub.is_single_block or region_sub.is_single_block:
        return None
    if region_sub.blocks & block_sub.blocks:
        return None
    if contains_barrier(region_sub) or contains_barrier(block_sub):
        return None
    single = block_sub.entry
    if single.phis:
        return None
    if region_sub.exit is None:
        return None

    chosen = _best_partner_block(region_sub, single)
    if chosen is None:
        return None
    path = _route_path(region_sub, chosen)
    if path is None:
        return None
    route: Dict[BasicBlock, int] = {}
    for block, nxt in zip(path, path[1:]):
        term = block.terminator
        if isinstance(term, Branch) and term.is_conditional:
            route[block] = term.successors.index(nxt)

    order = _preorder_blocks(region_sub)
    mapping = [(block, single if block is chosen else None) for block in order]
    return PartialMapping(mapping, chosen, route, region_on_true_path)


def _best_partner_block(region_sub: SESESubgraph, single: BasicBlock):
    from .profitability import block_profitability

    best, best_score = None, 0.0
    for block in sorted(region_sub.blocks, key=lambda b: b.name):
        score = block_profitability(block, single)
        if score > best_score:
            best, best_score = block, score
    return best


def _route_path(region_sub: SESESubgraph, chosen: BasicBlock):
    """A concrete path entry → chosen → exit inside the subgraph."""
    first = _bfs_path(region_sub, region_sub.entry, chosen)
    if first is None:
        return None
    second = _bfs_path(region_sub, chosen, region_sub.exit)
    if second is None:
        return None
    return first + second[1:]


def _bfs_path(region_sub: SESESubgraph, start: BasicBlock, goal: BasicBlock):
    if start is goal:
        return [start]
    parents = {start: None}
    queue = [start]
    while queue:
        block = queue.pop(0)
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        for succ in term.successors:
            if succ in region_sub.blocks and succ not in parents:
                parents[succ] = block
                if succ is goal:
                    path = [succ]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(succ)
    return None


def _preorder_blocks(subgraph: SESESubgraph) -> List[BasicBlock]:
    """Deterministic pre-order over the subgraph from its entry."""
    order: List[BasicBlock] = []
    seen = set()
    stack = [subgraph.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        order.append(block)
        term = block.terminator
        if isinstance(term, Branch):
            for succ in reversed(term.successors):
                if succ in subgraph.blocks:
                    stack.append(succ)
    return order


def contains_barrier(subgraph: SESESubgraph) -> bool:
    """Melding across barriers would change synchronization; such
    subgraphs are never meldable (they also indicate UB in the input:
    barriers under divergent control flow)."""
    for block in subgraph.blocks:
        for instr in block:
            if isinstance(instr, Call) and instr.is_barrier:
                return True
    return False


def subgraphs_meldable(
    s1: SESESubgraph,
    s2: SESESubgraph,
) -> Optional[List[Tuple[BasicBlock, BasicBlock]]]:
    """Definition 6 plus safety screens; returns the block mapping O."""
    if contains_barrier(s1) or contains_barrier(s2):
        return None
    return subgraph_isomorphism(s1, s2)
