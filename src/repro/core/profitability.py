"""Melding profitability metrics ``FP_B``, ``FP_S``, ``FP_I`` (§IV-C).

All three approximate the fraction (or number) of thread cycles melding
saves, using the shared static latency model:

* ``FP_B(b1, b2)`` — block-level: best-case overlap of the two blocks'
  opcode-frequency profiles, weighted by latency and normalized by the
  combined block latency.  Two blocks with identical profiles score 0.5.
* ``FP_S(S1, S2)`` — subgraph-level: latency-weighted average of
  ``FP_B`` over the isomorphism's block mapping ``O``.
* ``FP_I(I1, I2)`` — instruction-level (drives the Needleman–Wunsch
  instruction alignment): ``lat(I1) - N_s * l_sel`` when the pair is
  meldable, else 0.

φ nodes and terminators are excluded from the frequency profiles:
they are melded structurally, not via alignment, and counting branches
would make empty forwarding-block pairs look profitable (a fixpoint
hazard for Algorithm 1).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.ir.block import BasicBlock
from repro.ir.instructions import Call, Instruction, Phi
from repro.ir.values import Constant, Value


def meldable_instructions(block: BasicBlock) -> List[Instruction]:
    """The instructions that participate in alignment/profitability:
    everything except φs and the terminator."""
    return [i for i in block.instructions
            if not isinstance(i, Phi) and not i.is_terminator]


def instructions_match(a: Instruction, b: Instruction) -> bool:
    """The ``match`` predicate (Rocha et al.): same opcode shape, same
    type, same operand count, compatible attributes.  Implemented via
    :meth:`~repro.ir.instructions.Instruction.operand_signature`, which
    encodes predicates for compares, address spaces for memory ops and
    callees for calls; barriers never match (melding a barrier would
    change synchronization)."""
    if a is b:
        return False
    if isinstance(a, Call) and a.is_barrier:
        return False
    if isinstance(b, Call) and b.is_barrier:
        return False
    return a.operand_signature() == b.operand_signature()


def estimated_selects(a: Instruction, b: Instruction) -> int:
    """``N_s``: operands that would need a ``select`` if melded — the
    pre-melding approximation (operand identity before remapping)."""
    count = 0
    for op_a, op_b in zip(a.operands, b.operands):
        if op_a is op_b:
            continue
        if isinstance(op_a, Constant) and isinstance(op_b, Constant) and op_a == op_b:
            continue
        count += 1
    return count


def block_profitability(
    b1: BasicBlock,
    b2: BasicBlock,
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> float:
    """``FP_B``: best-case saved-cycle fraction for melding two blocks."""
    instrs1 = meldable_instructions(b1)
    instrs2 = meldable_instructions(b2)
    lat1 = sum(latency.latency(i) for i in instrs1)
    lat2 = sum(latency.latency(i) for i in instrs2)
    total = lat1 + lat2
    if total == 0:
        return 0.0

    profile1 = _signature_profile(instrs1, latency)
    profile2 = _signature_profile(instrs2, latency)
    saved = 0.0
    for signature, (count1, weight) in profile1.items():
        if signature in profile2:
            count2, _ = profile2[signature]
            saved += min(count1, count2) * weight
    return saved / total


def _signature_profile(instrs: Iterable[Instruction],
                       latency: LatencyModel) -> Dict[Tuple, Tuple[int, int]]:
    """opcode-signature → (frequency, per-instruction latency weight)."""
    profile: Dict[Tuple, Tuple[int, int]] = {}
    for instr in instrs:
        signature = instr.operand_signature()
        count, _ = profile.get(signature, (0, 0))
        profile[signature] = (count + 1, latency.latency(instr))
    return profile


def subgraph_profitability(
    mapping: List[Tuple[BasicBlock, BasicBlock]],
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> float:
    """``FP_S``: latency-weighted mean of ``FP_B`` over the block mapping
    ``O`` of two isomorphic subgraphs."""
    numerator = 0.0
    denominator = 0.0
    for b1, b2 in mapping:
        pair_latency = (sum(latency.latency(i) for i in meldable_instructions(b1))
                        + sum(latency.latency(i) for i in meldable_instructions(b2)))
        numerator += block_profitability(b1, b2, latency) * pair_latency
        denominator += pair_latency
    if denominator == 0:
        return 0.0
    return numerator / denominator


def partial_subgraph_profitability(
    region_blocks: Iterable[BasicBlock],
    chosen: BasicBlock,
    single: BasicBlock,
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> float:
    """``FP_S`` for a case-② pairing: only the chosen block overlaps the
    single block; every other region block contributes latency to the
    denominator but saves nothing, so partial melds are naturally
    dominated by any available full isomorphism."""
    def block_latency(block: BasicBlock) -> int:
        return sum(latency.latency(i) for i in meldable_instructions(block))

    pair_latency = block_latency(chosen) + block_latency(single)
    total = sum(block_latency(b) for b in region_blocks) + block_latency(single)
    if total == 0:
        return 0.0
    return block_profitability(chosen, single, latency) * pair_latency / total


def instruction_profitability(
    a: Instruction,
    b: Instruction,
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> float:
    """``FP_I``: cycles saved by melding ``a`` with ``b`` (0 if unmeldable)."""
    if not instructions_match(a, b):
        return 0.0
    return latency.latency(a) - estimated_selects(a, b) * latency.select_latency
