"""Subgraph alignment: choosing which SESE subgraph pairs to meld.

Definition 7 requires an order-preserving alignment of the true-path and
false-path subgraph sequences in which every aligned pair is meldable.
The paper implements (and we default to) the **greedy** variant: an
``m × n`` profitability scan choosing the single most profitable meldable
pair per Algorithm-1 iteration, with the tie broken toward the pair that
dominates the most remaining subgraphs (earliest pair), which maximizes
how many melds later iterations can still perform.  The optimal
Needleman–Wunsch variant is provided for ablation.

Pairs come in two flavours (Definition 6): fully isomorphic subgraphs
(cases ① and ③ — every block maps) and the *partial* case ② where a
single basic block melds into one block of a simple region (see
:class:`repro.core.meldable.PartialMapping`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.ir.block import BasicBlock

from .alignment import needleman_wunsch
from .meldable import PartialMapping, region_block_mapping, subgraphs_meldable
from .profitability import partial_subgraph_profitability, subgraph_profitability
from .sese import SESESubgraph

#: (true-side block | None, false-side block | None); None marks the
#: unmatched side of a case-② pairing.
BlockMapping = List[Tuple[Optional[BasicBlock], Optional[BasicBlock]]]


@dataclass
class SubgraphPair:
    """A chosen meldable pair with its (oriented) mapping and score."""

    true_subgraph: SESESubgraph
    false_subgraph: SESESubgraph
    mapping: BlockMapping
    profitability: float
    true_index: int
    false_index: int
    #: case ② only: conditional-branch steering for the single-block side
    route: Dict[BasicBlock, int] = field(default_factory=dict)

    @property
    def is_partial(self) -> bool:
        return any(a is None or b is None for a, b in self.mapping)

    @property
    def partial_region_side(self) -> Optional[str]:
        """For case-② pairs, which path holds the multi-block region:
        ``"true"``/``"false"``; ``None`` for fully isomorphic pairs."""
        if any(b is None for _, b in self.mapping):
            return "true"
        if any(a is None for a, _ in self.mapping):
            return "false"
        return None


def _full_pair(st: SESESubgraph, sf: SESESubgraph, i: int, j: int,
               latency: LatencyModel) -> Optional[SubgraphPair]:
    mapping = subgraphs_meldable(st, sf)
    if mapping is None:
        return None
    return SubgraphPair(st, sf, list(mapping),
                        subgraph_profitability(mapping, latency), i, j)


def _partial_pair(st: SESESubgraph, sf: SESESubgraph, i: int, j: int,
                  latency: LatencyModel) -> Optional[SubgraphPair]:
    if not st.is_single_block and sf.is_single_block:
        partial = region_block_mapping(st, sf, region_on_true_path=True)
        if partial is None:
            return None
        mapping: BlockMapping = list(partial.mapping)
        single = sf.entry
    elif st.is_single_block and not sf.is_single_block:
        partial = region_block_mapping(sf, st, region_on_true_path=False)
        if partial is None:
            return None
        mapping = [(b, a) for a, b in partial.mapping]
        single = st.entry
    else:
        return None
    region_sub = st if single is sf.entry else sf
    profit = partial_subgraph_profitability(
        region_sub.blocks, partial.chosen, single, latency)
    return SubgraphPair(st, sf, mapping, profit, i, j, route=partial.route)


def candidate_pair(st: SESESubgraph, sf: SESESubgraph, i: int = 0, j: int = 0,
                   latency: LatencyModel = DEFAULT_LATENCY_MODEL,
                   allow_partial: bool = True) -> Optional[SubgraphPair]:
    """The best way to meld this particular (true, false) subgraph pair:
    full isomorphism when available, case ② otherwise."""
    pair = _full_pair(st, sf, i, j, latency)
    if pair is not None:
        return pair
    if allow_partial:
        return _partial_pair(st, sf, i, j, latency)
    return None


def most_profitable_pair(
    true_path: List[SESESubgraph],
    false_path: List[SESESubgraph],
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
    allow_partial: bool = True,
) -> Optional[SubgraphPair]:
    """Greedy ``MostProfitableSubgraphPair`` (Algorithm 1)."""
    best: Optional[SubgraphPair] = None
    for i, st in enumerate(true_path):
        for j, sf in enumerate(false_path):
            candidate = candidate_pair(st, sf, i, j, latency, allow_partial)
            if candidate is None:
                continue
            if best is None or candidate.profitability > best.profitability or (
                    candidate.profitability == best.profitability
                    and (i + j) < (best.true_index + best.false_index)):
                best = candidate
    return best


def align_subgraphs(
    true_path: List[SESESubgraph],
    false_path: List[SESESubgraph],
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> List[SubgraphPair]:
    """Optimal order-preserving alignment via Needleman–Wunsch
    (Definition 7): ablation alternative to the greedy scan.  Gap penalty
    is zero — skipping a subgraph costs nothing, it simply is not melded."""
    def score(st: SESESubgraph, sf: SESESubgraph) -> float:
        candidate = candidate_pair(st, sf, latency=latency)
        if candidate is None:
            return float("-inf")
        return candidate.profitability

    result = needleman_wunsch(true_path, false_path, score,
                              gap_open=0.0, gap_extend=0.0,
                              min_match_score=1e-9)
    pairs: List[SubgraphPair] = []
    for st, sf in result.matches:
        candidate = candidate_pair(st, sf, true_path.index(st),
                                   false_path.index(sf), latency)
        if candidate is not None:
            pairs.append(candidate)
    return pairs
