"""Instruction alignment for corresponding basic blocks (§IV-C).

Needleman–Wunsch over the two blocks' meldable instruction lists (φs and
terminators are handled structurally by the melder), scored by ``FP_I``
and with the paper's affine gap cost: two branch latencies per gap run,
independent of the run's length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction

from .alignment import needleman_wunsch
from .profitability import (
    instruction_profitability,
    instructions_match,
    meldable_instructions,
)

#: score below which a pair is treated as forbidden rather than merely bad
_FORBIDDEN = float("-inf")


@dataclass
class InstructionPair:
    """I-I (both set) or I-G (one side None) alignment entry."""

    true_instr: Optional[Instruction]
    false_instr: Optional[Instruction]

    @property
    def is_match(self) -> bool:
        return self.true_instr is not None and self.false_instr is not None

    @property
    def lone(self) -> Instruction:
        """The instruction of an I-G pair."""
        instr = self.true_instr if self.true_instr is not None else self.false_instr
        assert instr is not None
        return instr

    @property
    def from_true_path(self) -> bool:
        return self.true_instr is not None


def align_instructions(
    true_block: BasicBlock,
    false_block: BasicBlock,
    latency: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> List[InstructionPair]:
    """Optimal I-I / I-G alignment of two corresponding blocks."""
    true_instrs = meldable_instructions(true_block)
    false_instrs = meldable_instructions(false_block)

    def score(a: Instruction, b: Instruction) -> float:
        if not instructions_match(a, b):
            return _FORBIDDEN
        return instruction_profitability(a, b, latency)

    gap = 2.0 * latency.branch_latency
    result = needleman_wunsch(true_instrs, false_instrs, score,
                              gap_open=gap, gap_extend=0.0,
                              min_match_score=-1e17)
    return [InstructionPair(p.left, p.right) for p in result.pairs]


def alignment_saved_cycles(pairs: List[InstructionPair],
                           latency: LatencyModel = DEFAULT_LATENCY_MODEL) -> float:
    """Estimated cycles saved by this alignment (diagnostics/benchmarks)."""
    saved = 0.0
    for pair in pairs:
        if pair.is_match:
            saved += instruction_profitability(pair.true_instr, pair.false_instr,
                                               latency)
    return saved
