"""CFM: the paper's contribution — control-flow melding.

Public surface:

* :func:`run_cfm` / :class:`CFMConfig` — the full transformation pass
  (Algorithm 1);
* the analysis pieces it composes, exposed for tests, diagnostics and
  ablations: meldable-region detection, SESE decomposition, subgraph and
  instruction alignment, profitability metrics, the melder, and
  unpredication.
"""

from .alignment import (
    AlignedPair,
    AlignmentResult,
    needleman_wunsch,
    smith_waterman,
)
from .profitability import (
    block_profitability,
    partial_subgraph_profitability,
    estimated_selects,
    instruction_profitability,
    instructions_match,
    meldable_instructions,
    subgraph_profitability,
)
from .sese import SESESubgraph, path_subgraphs, simplify_path_subgraphs
from .meldable import (
    MeldableRegion,
    PartialMapping,
    contains_barrier,
    find_meldable_region,
    region_block_mapping,
    subgraph_isomorphism,
    subgraphs_meldable,
)
from .subgraph_align import (
    SubgraphPair,
    align_subgraphs,
    candidate_pair,
    most_profitable_pair,
)
from .instr_align import InstructionPair, align_instructions, alignment_saved_cycles
from .melder import MeldResult, Melder, Side
from .unpredication import unpredicate
from .pass_ import CFMConfig, CFMPass, CFMStats, MeldRecord, run_cfm

__all__ = [
    "AlignedPair", "AlignmentResult", "needleman_wunsch", "smith_waterman",
    "block_profitability", "estimated_selects", "instruction_profitability",
    "instructions_match", "meldable_instructions", "subgraph_profitability",
    "partial_subgraph_profitability",
    "SESESubgraph", "path_subgraphs", "simplify_path_subgraphs",
    "MeldableRegion", "PartialMapping", "contains_barrier",
    "find_meldable_region", "region_block_mapping",
    "subgraph_isomorphism", "subgraphs_meldable",
    "SubgraphPair", "align_subgraphs", "candidate_pair",
    "most_profitable_pair",
    "InstructionPair", "align_instructions", "alignment_saved_cycles",
    "MeldResult", "Melder", "Side",
    "unpredicate",
    "CFMConfig", "CFMPass", "CFMStats", "MeldRecord", "run_cfm",
]
