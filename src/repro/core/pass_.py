"""The CFM function pass: Algorithm 1 of the paper.

Per iteration: walk the blocks of the kernel; for the first block that
roots a meldable divergent region, simplify its path subgraphs, pick the
most profitable meldable subgraph pair, and meld it if the profitability
clears the threshold.  Melding invalidates every control-flow analysis,
so the pass recomputes them and repeats until no profitable meld remains.

Each meld is followed by SSA repair (``PreProcess``/Figure 4),
unpredication (§IV-E) and the post-optimizations of §IV-F (redundant
branch folding, trivial-φ removal, unreachable-block cleanup, DCE).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.divergence import cached_divergence, invalidate_divergence
from repro.analysis.dominators import compute_postdominator_tree
from repro.analysis.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.analysis.validate import MeldValidation, RegionCapture
from repro.ir.function import Function
from repro.obs import (
    BlockPairScore,
    MeldingDecision,
    current_tracer,
    emit_decisions,
    record_cfm_decisions,
    record_validate_verdict,
)
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.simplifycfg import (
    fold_redundant_branches,
    remove_forwarding_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
)
from repro.transforms.pass_manager import Pass, PassResult
from repro.transforms.ssa_repair import repair_ssa

from .instr_align import align_instructions
from .meldable import MeldableRegion, find_meldable_region
from .melder import Melder, MeldResult
from .profitability import block_profitability, instruction_profitability
from .sese import path_subgraphs, simplify_path_subgraphs
from .subgraph_align import (
    SubgraphPair,
    align_subgraphs,
    most_profitable_pair,
)
from .unpredication import unpredicate


@dataclass
class CFMConfig:
    """Tunables of the melding pass."""

    #: minimum ``FP_S`` for a pair to be melded (Algorithm 1's threshold)
    profitability_threshold: float = 0.1
    #: upper bound on Algorithm-1 iterations (one meld each)
    max_iterations: int = 64
    #: run §IV-E unpredication after each meld
    unpredication: bool = True
    #: also unpredicate side-effect-free runs (the paper does; ablation knob)
    split_pure_runs: bool = True
    #: use optimal NW subgraph alignment instead of the paper's greedy scan
    optimal_subgraph_alignment: bool = False
    #: allow case-② melds (simple region with single basic block, Def. 6)
    allow_partial_melds: bool = True
    #: symbolically validate every accepted meld (translation validation;
    #: see :mod:`repro.analysis.validate`); off by default so evaluation
    #: sweeps pay nothing — one boolean check per meld
    validate: bool = False
    latency: LatencyModel = field(default_factory=lambda: DEFAULT_LATENCY_MODEL)


@dataclass
class MeldRecord:
    """One successful meld, for diagnostics and the compile-time study."""

    region_entry: str
    true_entry: str
    false_entry: str
    blocks_melded: int
    profitability: float
    partial: bool
    selects_inserted: int
    instructions_melded: int
    instructions_unaligned: int


@dataclass
class CFMStats:
    """Aggregate outcome of the pass."""

    melds: List[MeldRecord] = field(default_factory=list)
    #: the structured decision log: every candidate region with its
    #: FP_B/FP_S/FP_I scores, alignment, and accept/reject reason
    decisions: List[MeldingDecision] = field(default_factory=list)
    #: per-meld translation-validation verdicts (only populated when
    #: ``CFMConfig.validate`` is on; consumed by the
    #: ``PassPipeline(validate_melds=...)`` hook)
    validations: List[MeldValidation] = field(default_factory=list)
    iterations: int = 0
    regions_considered: int = 0
    pairs_rejected_unprofitable: int = 0
    seconds: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(self.melds)

    @property
    def total_selects(self) -> int:
        return sum(m.selects_inserted for m in self.melds)

    @property
    def total_melded_instructions(self) -> int:
        return sum(m.instructions_melded for m in self.melds)


class CFMPass(Pass):
    """Control-flow melding as a standard :class:`~repro.transforms.Pass`.

    This is the canonical entry point: a :class:`CFMPass` drops into any
    :class:`~repro.transforms.PassPipeline` next to the standard
    transforms and the Table-I baselines, and its :class:`CFMStats` ride
    along in the returned :class:`PassResult` (also kept on
    :attr:`stats` for the most recent run).
    """

    name = "cfm"

    def __init__(self, config: Optional[CFMConfig] = None) -> None:
        self.config = config or CFMConfig()
        #: statistics of the most recent :meth:`run`
        self.stats: Optional[CFMStats] = None

    def run(self, function: Function) -> PassResult:
        """Apply control-flow melding to ``function`` until fixpoint."""
        stats = CFMStats()
        start = time.perf_counter()

        for _ in range(self.config.max_iterations):
            stats.iterations += 1
            if not _meld_one(function, self.config, stats):
                break

        stats.seconds = time.perf_counter() - start
        self.stats = stats
        emit_decisions(stats.decisions, current_tracer())
        record_cfm_decisions(stats.decisions)
        return PassResult(changed=stats.changed, stats=stats)


def run_cfm(function: Function, config: Optional[CFMConfig] = None) -> CFMStats:
    """Apply control-flow melding to ``function`` until fixpoint.

    .. deprecated:: 1.1
       Thin alias kept for existing callers; new code should run
       :class:`CFMPass` (directly or inside a ``PassPipeline``).
    """
    return CFMPass(config).run(function).stats


def _meld_one(function: Function, config: CFMConfig, stats: CFMStats) -> bool:
    """One Algorithm-1 iteration: meld at most one subgraph pair.

    Every candidate region appends one :class:`MeldingDecision` to
    ``stats.decisions`` — the structured log of why the region melded or
    was passed over.
    """
    # Shared memo: a lint / facade analyze() of the same unchanged IR
    # reuses this fixpoint instead of re-running it.
    divergence = cached_divergence(function)
    pdt = compute_postdominator_tree(function)

    for block in function.blocks:
        region = find_meldable_region(block, divergence, pdt)
        if region is None:
            continue
        stats.regions_considered += 1

        true_subs = path_subgraphs(region.true_first, region.exit, pdt)
        false_subs = path_subgraphs(region.false_first, region.exit, pdt)
        if not true_subs or not false_subs:
            stats.decisions.append(MeldingDecision(
                iteration=stats.iterations, region_entry=region.entry.name,
                action="no-path-subgraphs",
                reason="a divergent path decomposes into no SESE subgraphs",
                threshold=config.profitability_threshold))
            continue
        changed_t = simplify_path_subgraphs(function, true_subs)
        changed_f = simplify_path_subgraphs(function, false_subs)
        if changed_t or changed_f:
            invalidate_divergence(function)
            # Region simplification only inserts forwarding exit blocks;
            # the subgraph descriptors were updated in place and the
            # melder does not consult the stale post-dominator tree.
            pdt = compute_postdominator_tree(function)

        pair = _choose_pair(true_subs, false_subs, config)
        if pair is None:
            stats.decisions.append(MeldingDecision(
                iteration=stats.iterations, region_entry=region.entry.name,
                action="no-meldable-pair",
                reason="no meldable (isomorphic or case-②) subgraph "
                       "pair exists across the two paths",
                threshold=config.profitability_threshold))
            continue
        decision = _score_pair(stats.iterations, region, pair, config)
        # Stamped from the analysis (not from region selection), so the
        # lint meld-legality audit has an independent fact to check.
        decision.branch_divergent = divergence.has_divergent_branch(region.entry)
        if pair.profitability <= config.profitability_threshold:
            stats.pairs_rejected_unprofitable += 1
            decision.action = "rejected-unprofitable"
            decision.reason = (
                f"FP_S {pair.profitability:.4f} ≤ threshold "
                f"{config.profitability_threshold:g}")
            stats.decisions.append(decision)
            continue

        capture = None
        capture_seconds = 0.0
        if config.validate:
            # Pre-meld symbolic summaries must be taken now: the melder
            # consumes the region's blocks.  (The post-meld runs happen
            # after unpredication, before the §IV-F cleanups below.)
            v_start = time.perf_counter()
            capture = RegionCapture(region.entry, region.exit,
                                    region.condition)
            capture_seconds = time.perf_counter() - v_start

        result = Melder(function, region, pair, config.latency).meld()
        remove_unreachable_blocks(function)
        repair_ssa(function)
        unpredicated = False
        if config.unpredication:
            unpredicated = unpredicate(function, result,
                                       config.split_pure_runs)
        if capture is not None:
            v_start = time.perf_counter()
            validation = capture.compare_against_current()
            validation.seconds = (capture_seconds
                                  + time.perf_counter() - v_start)
            stats.validations.append(validation)
            decision.validation = validation.verdict
            record_validate_verdict(validation.verdict, validation.seconds)
            tracer = current_tracer()
            if tracer.enabled:
                tracer.instant(f"validate:{validation.verdict}",
                               cat="melding",
                               args={"region": validation.region_entry,
                                     "detail": validation.detail})
        _post_optimize(function)
        invalidate_divergence(function)

        decision.action = "melded"
        decision.reason = (
            f"FP_S {pair.profitability:.4f} > threshold "
            f"{config.profitability_threshold:g}")
        decision.selects_inserted = result.selects_inserted
        decision.instructions_melded = result.instructions_melded
        decision.instructions_unaligned = result.instructions_unaligned
        decision.unpredicated = unpredicated
        decision.guard_blocks = list(result.guarded_side_effect_blocks)
        stats.decisions.append(decision)

        stats.melds.append(MeldRecord(
            region_entry=region.entry.name,
            true_entry=pair.true_subgraph.entry.name,
            false_entry=pair.false_subgraph.entry.name,
            blocks_melded=len(pair.mapping),
            profitability=pair.profitability,
            partial=pair.is_partial,
            selects_inserted=result.selects_inserted,
            instructions_melded=result.instructions_melded,
            instructions_unaligned=result.instructions_unaligned,
        ))
        return True
    return False


def _score_pair(iteration: int, region: MeldableRegion, pair: SubgraphPair,
                config: CFMConfig) -> MeldingDecision:
    """Score a chosen pair *before* melding mutates its blocks: per-pair
    ``FP_B`` over the alignment and the summed instruction-level ``FP_I``
    (estimated cycles saved) of every fully-mapped block pair."""
    block_scores = []
    fp_i_total = 0.0
    for bt, bf in pair.mapping:
        if bt is None or bf is None:
            block_scores.append(BlockPairScore(
                true_block=bt.name if bt is not None else None,
                false_block=bf.name if bf is not None else None,
                fp_b=0.0))
            continue
        block_scores.append(BlockPairScore(
            true_block=bt.name, false_block=bf.name,
            fp_b=block_profitability(bt, bf, config.latency)))
        for ip in align_instructions(bt, bf, config.latency):
            if ip.is_match:
                fp_i_total += instruction_profitability(
                    ip.true_instr, ip.false_instr, config.latency)
    return MeldingDecision(
        iteration=iteration,
        region_entry=region.entry.name,
        action="melded",  # overwritten by the caller's verdict
        reason="",
        threshold=config.profitability_threshold,
        fp_s=pair.profitability,
        true_entry=pair.true_subgraph.entry.name,
        false_entry=pair.false_subgraph.entry.name,
        partial=pair.is_partial,
        alignment=[(bt.name if bt is not None else None,
                    bf.name if bf is not None else None)
                   for bt, bf in pair.mapping],
        block_scores=block_scores,
        fp_i_saved_cycles=fp_i_total,
    )


def _choose_pair(true_subs, false_subs, config: CFMConfig) -> Optional[SubgraphPair]:
    if config.optimal_subgraph_alignment:
        pairs = align_subgraphs(true_subs, false_subs, config.latency)
        profitable = [p for p in pairs
                      if p.profitability > config.profitability_threshold]
        if not profitable:
            return None
        return max(profitable, key=lambda p: p.profitability)
    return most_profitable_pair(true_subs, false_subs, config.latency,
                                allow_partial=config.allow_partial_melds)


def _post_optimize(function: Function) -> None:
    """§IV-F post-optimizations (kept local: full SimplifyCFG runs later
    in the driver pipeline)."""
    changed = True
    while changed:
        changed = False
        changed |= fold_redundant_branches(function)
        changed |= remove_trivial_phis(function)
        changed |= remove_forwarding_blocks(function)
        changed |= remove_unreachable_blocks(function)
    eliminate_dead_code(function)
