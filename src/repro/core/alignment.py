"""Generic sequence alignment: Needleman–Wunsch and Smith–Waterman.

CFM uses hierarchical sequence alignment twice (§IV-C): once over the
SESE subgraph sequences of a divergent region's true/false paths, and
once over the instruction lists of corresponding basic blocks.  Both
callers share the implementations here.

Gap costs are affine (Gotoh's algorithm): the paper observes that a gap
of unaligned instructions costs two branches *regardless of its length*,
which is exactly ``gap_open > 0, gap_extend = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

A = TypeVar("A")
B = TypeVar("B")

#: score function: similarity of two elements (higher = more alignable)
ScoreFn = Callable[[A, B], float]

NEG_INF = float("-inf")


@dataclass
class AlignedPair(Generic[A, B]):
    """One alignment column: ``(a, b)``, ``(a, None)`` or ``(None, b)``."""

    left: Optional[A]
    right: Optional[B]

    @property
    def is_match(self) -> bool:
        return self.left is not None and self.right is not None

    @property
    def is_gap(self) -> bool:
        return not self.is_match


@dataclass
class AlignmentResult(Generic[A, B]):
    pairs: List[AlignedPair]
    score: float

    @property
    def matches(self) -> List[Tuple[A, B]]:
        return [(p.left, p.right) for p in self.pairs if p.is_match]

    @property
    def num_matches(self) -> int:
        return sum(1 for p in self.pairs if p.is_match)

    @property
    def num_gaps(self) -> int:
        return sum(1 for p in self.pairs if p.is_gap)


def needleman_wunsch(
    seq_a: Sequence[A],
    seq_b: Sequence[B],
    score: ScoreFn,
    gap_open: float = 0.0,
    gap_extend: float = 0.0,
    min_match_score: float = 0.0,
) -> AlignmentResult:
    """Global alignment with affine gap penalties (Gotoh).

    ``score(a, b)`` below ``min_match_score`` forbids the match outright
    (used to encode CFM's ``match()`` predicate: unmeldable instructions
    must never be aligned, however convenient).  Gap penalties are passed
    as positive costs.
    """
    n, m = len(seq_a), len(seq_b)
    # M[i][j]: best score ending in a match at (i, j).
    # X[i][j]: best score with seq_a[i-1] aligned to a gap (gap in b).
    # Y[i][j]: best score with seq_b[j-1] aligned to a gap (gap in a).
    M = [[NEG_INF] * (m + 1) for _ in range(n + 1)]
    X = [[NEG_INF] * (m + 1) for _ in range(n + 1)]
    Y = [[NEG_INF] * (m + 1) for _ in range(n + 1)]
    M[0][0] = 0.0

    for i in range(n + 1):
        for j in range(m + 1):
            if i == 0 and j == 0:
                continue
            if i > 0 and j > 0:
                pair_score = score(seq_a[i - 1], seq_b[j - 1])
                if pair_score >= min_match_score:
                    best_prev = max(M[i - 1][j - 1], X[i - 1][j - 1], Y[i - 1][j - 1])
                    M[i][j] = (best_prev + pair_score) if best_prev > NEG_INF else NEG_INF
                else:
                    M[i][j] = NEG_INF
            else:
                M[i][j] = NEG_INF
            if i > 0:
                X[i][j] = max(M[i - 1][j] - gap_open,
                              X[i - 1][j] - gap_extend,
                              Y[i - 1][j] - gap_open)
            else:
                X[i][j] = NEG_INF
            if j > 0:
                Y[i][j] = max(M[i][j - 1] - gap_open,
                              X[i][j - 1] - gap_open,
                              Y[i][j - 1] - gap_extend)
            else:
                Y[i][j] = NEG_INF

    # Traceback.
    pairs: List[AlignedPair] = []
    i, j = n, m
    state = max(("M", "X", "Y"), key=lambda s: {"M": M, "X": X, "Y": Y}[s][i][j])
    final = {"M": M, "X": X, "Y": Y}[state][n][m]
    while i > 0 or j > 0:
        if state == "M":
            pairs.append(AlignedPair(seq_a[i - 1], seq_b[j - 1]))
            prev = max(("M", "X", "Y"),
                       key=lambda s: {"M": M, "X": X, "Y": Y}[s][i - 1][j - 1])
            i, j = i - 1, j - 1
            state = prev
        elif state == "X":
            pairs.append(AlignedPair(seq_a[i - 1], None))
            candidates = [
                ("M", M[i - 1][j] - gap_open),
                ("X", X[i - 1][j] - gap_extend),
                ("Y", Y[i - 1][j] - gap_open),
            ]
            state = max(candidates, key=lambda c: c[1])[0]
            i -= 1
        else:
            pairs.append(AlignedPair(None, seq_b[j - 1]))
            candidates = [
                ("M", M[i][j - 1] - gap_open),
                ("X", X[i][j - 1] - gap_open),
                ("Y", Y[i][j - 1] - gap_extend),
            ]
            state = max(candidates, key=lambda c: c[1])[0]
            j -= 1
    pairs.reverse()
    return AlignmentResult(pairs, final)


def smith_waterman(
    seq_a: Sequence[A],
    seq_b: Sequence[B],
    score: ScoreFn,
    gap_penalty: float = 1.0,
) -> AlignmentResult:
    """Local alignment (linear gaps).  The paper lists Smith–Waterman as
    an alternative to NW for the subgraph alignment; provided for
    completeness and ablations."""
    n, m = len(seq_a), len(seq_b)
    H = [[0.0] * (m + 1) for _ in range(n + 1)]
    best, best_pos = 0.0, (0, 0)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            H[i][j] = max(
                0.0,
                H[i - 1][j - 1] + score(seq_a[i - 1], seq_b[j - 1]),
                H[i - 1][j] - gap_penalty,
                H[i][j - 1] - gap_penalty,
            )
            if H[i][j] > best:
                best, best_pos = H[i][j], (i, j)

    pairs: List[AlignedPair] = []
    i, j = best_pos
    while i > 0 and j > 0 and H[i][j] > 0:
        here = H[i][j]
        if here == H[i - 1][j - 1] + score(seq_a[i - 1], seq_b[j - 1]):
            pairs.append(AlignedPair(seq_a[i - 1], seq_b[j - 1]))
            i, j = i - 1, j - 1
        elif here == H[i - 1][j] - gap_penalty:
            pairs.append(AlignedPair(seq_a[i - 1], None))
            i -= 1
        else:
            pairs.append(AlignedPair(None, seq_b[j - 1]))
            j -= 1
    pairs.reverse()
    return AlignmentResult(pairs, best)
