"""Unpredication (§IV-E): guard unaligned instruction runs.

The melder places I-G (gap) instructions straight into the melded blocks,
where they would execute for *every* lane.  Unpredication splits each
melded block at gap-run boundaries and moves each run into a fresh block
reached only when the branch condition selects that run's original path.

Besides the paper's motivation (redundant execution wastes cycles and
power), this step is a *correctness requirement* for runs containing
non-speculatable instructions — a true-path store must not execute for
false-path lanes.  The implementation therefore always splits runs with
side effects and treats pure runs according to policy (default: split,
matching the paper; the ablation benchmarks flip it).

Value flow out of a guarded run is re-established by SSA repair, which
inserts exactly the ``φ [%v, %run], [undef, %bypass]`` nodes Figure 3c
shows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Phi
from repro.ir.values import Value
from repro.transforms.ssa_repair import repair_ssa

from .melder import MeldResult, Side


def unpredicate(function: Function, result: MeldResult,
                split_pure_runs: bool = True) -> bool:
    """Split gap runs out of the melded blocks.  Returns True if changed."""
    changed = False
    for block in list(result.melded_blocks):
        changed |= _unpredicate_block(function, block, result, split_pure_runs)
    if changed:
        repair_ssa(function)
    return changed


def _runs(block: BasicBlock, sides: Dict[Instruction, Side]
          ) -> List[Tuple[Side, List[Instruction]]]:
    """Maximal same-side runs of the block's body instructions."""
    runs: List[Tuple[Side, List[Instruction]]] = []
    for instr in block.instructions:
        if isinstance(instr, Phi) or instr.is_terminator:
            continue
        side = sides.get(instr, Side.BOTH)
        if runs and runs[-1][0] is side:
            runs[-1][1].append(instr)
        else:
            runs.append((side, [instr]))
    return runs


def _should_split(side: Side, instrs: List[Instruction], split_pure: bool) -> bool:
    if side is Side.BOTH:
        return False
    if any(not i.is_speculatable for i in instrs):
        return True  # correctness: side effects must stay on their path
    return split_pure


def _unpredicate_block(function: Function, block: BasicBlock,
                       result: MeldResult, split_pure: bool) -> bool:
    runs = _runs(block, result.sides)
    pending = [(side, instrs) for side, instrs in runs
               if _should_split(side, instrs, split_pure)]
    if not pending:
        return False

    condition = result.condition
    current = block
    for side, instrs in runs:
        if not _should_split(side, instrs, split_pure):
            continue
        # Split `current` right after the run's last instruction; then pull
        # the run out into its own conditional block.
        tail = _split_after(function, current, instrs[-1],
                            f"{block.name}.tail")
        guarded = function.add_block(f"{block.name}.{side.value}", after=current)
        if any(not i.is_speculatable for i in instrs):
            result.guarded_side_effect_blocks.append(guarded.name)
        for instr in instrs:
            instr.parent._remove_instruction(instr)
            instr.parent = guarded
            guarded._instructions.append(instr)
        guarded.append(Branch([tail]))
        head_term = current.terminator
        assert isinstance(head_term, Branch) and not head_term.is_conditional
        if side is Side.TRUE:
            current.replace_terminator(Branch([guarded, tail], condition))
        else:
            current.replace_terminator(Branch([tail, guarded], condition))
        result.melded_blocks.append(tail)
        current = tail
    return True


def _split_after(function: Function, block: BasicBlock, instr: Instruction,
                 name: str) -> BasicBlock:
    """Split ``block`` after ``instr``; the new block receives everything
    below (including the terminator) and inherits the CFG successors;
    ``block`` ends with an unconditional branch to it."""
    instrs = block.instructions
    index = instrs.index(instr)
    moved = instrs[index + 1:]
    tail = function.add_block(name, after=block)
    term = block.terminator
    if isinstance(term, Branch):
        term._unlink_successors()
    for moving in moved:
        block._remove_instruction(moving)
        if moving is term and isinstance(moving, Branch):
            tail.append(moving)
        else:
            moving.parent = tail
            tail._instructions.append(moving)
    # Downstream φs: control now arrives from `tail`.
    for succ in tail.succs:
        for phi in succ.phis:
            phi.replace_incoming_block(block, tail)
    block.append(Branch([tail]))
    return tail
