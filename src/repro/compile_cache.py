"""Persistent, content-addressed compile cache.

PR 1 introduced an in-process :class:`CompileCache` so the two arms of
one baseline-vs-CFM comparison share a single ``-O3`` run.  Profiling
the ``pass:<name>`` spans (see ``docs/performance.md``) showed that was
never going to amortize the real cost: on the Figure 8 workload the CFM
stage itself — alignment, divergence analysis, postdominator trees —
dominates compile time by ~4× over ``-O3``, and inter-pass verification
is noise.  So this module caches the **whole pipeline result**, and
persists it to disk so the cost is paid once per machine, not once per
process:

* **keys** are ``(pipeline_id, digest)`` where ``digest`` is the SHA-256
  of the printed pre-pipeline IR — content addressing, so any process
  that builds the same kernel hits, regardless of object identity;
* **values** are the printed optimized module, the per-pass timings of
  the run that produced it, the symbolic lowered µop program
  (:func:`repro.simt.lower_symbolic`), and — for full-pipeline entries —
  the serialized :class:`~repro.core.CFMStats`.  Consumers re-parse the
  text on every hit, so entries are never aliased into live modules;
* **two pipeline ids** per kernel: ``"o3"`` (the baseline arm) and
  ``cfm:<digest>`` (:func:`cfm_pipeline_id`, covering every
  :class:`~repro.core.CFMConfig` knob plus its latency model), so a
  warm CFM arm replays O3 + melding + late cleanups in one lookup;
* the **disk layer** (:class:`DiskCompileCache`) writes one JSON file
  per key via write-to-temp + :func:`os.replace`, so concurrent writers
  race benignly (last full file wins, readers never see a torn write).
  Files carry a versioned ``schema`` header; version mismatch,
  truncation or corruption is treated as a miss and the file is evicted.

Hits and misses are visible in ``repro.obs`` traces as
``compile-cache:hit`` / ``compile-cache:miss`` instants, and replayed
pass spans carry ``"cached": true`` so Perfetto timelines distinguish a
replay from a live run.

The cache directory comes from the ``REPRO_COMPILE_CACHE`` environment
variable (``--compile-cache`` on the CLIs); unset or ``"off"`` keeps the
cache purely in-process.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro._deprecation import warn_once
from repro.core import CFMConfig, CFMStats, MeldRecord
from repro.ir import print_module
from repro.ir.parser import parse_module
from repro.obs import (
    current_tracer,
    emit_pass_timing,
    record_cache_eviction,
    record_cache_lookup,
)
from repro.obs.decisions import MeldingDecision
from repro.obs.passes import pass_timing_events
from repro.obs.tracer import COMPILE_PID
from repro.simt import (
    DEFAULT_CONFIG,
    ProgramDecodeError,
    latency_token_key,
    machine_token_key,
    materialize_program,
    seed_program,
)
from repro.transforms import PassTiming

#: on-disk entry format; bump on any incompatible payload change
CACHE_SCHEMA = "repro.compile-cache/1"

#: environment variable naming the cache directory ("off"/"0" disables)
CACHE_ENV_VAR = "REPRO_COMPILE_CACHE"

CacheKey = Tuple[str, str]


def _machine_from_latency(machine, latency, where: str):
    """Fold the deprecated ``latency=`` kwarg into a machine config."""
    if latency is None:
        return machine
    if machine is not None:
        raise ValueError(
            f"{where}: latency= duplicates MachineConfig.latency and the "
            f"machine= config wins; spell it "
            f"machine=MachineConfig(latency=...)")
    warn_once(f"{where}(latency=...) is deprecated; pass "
              f"machine=MachineConfig(latency=...)", stacklevel=4)
    return replace(DEFAULT_CONFIG, latency=latency)


def digest_text(*parts: str) -> str:
    """SHA-256 hex digest of ``parts`` (NUL-joined, so boundaries count)."""
    h = hashlib.sha256()
    for i, part in enumerate(parts):
        if i:
            h.update(b"\x00")
        h.update(part.encode("utf-8"))
    return h.hexdigest()


def cfm_pipeline_id(config: Optional[CFMConfig] = None) -> str:
    """Pipeline id of the full ``-O3 + CFM + late cleanups`` pipeline.

    Every :class:`CFMConfig` knob (including the latency model feeding
    the profitability heuristics) lands in the digest, so sweeps over
    melding configurations never share entries.
    """
    config = config or CFMConfig()
    token = {
        "profitability_threshold": config.profitability_threshold,
        "max_iterations": config.max_iterations,
        "unpredication": config.unpredication,
        "split_pure_runs": config.split_pure_runs,
        "optimal_subgraph_alignment": config.optimal_subgraph_alignment,
        "allow_partial_melds": config.allow_partial_melds,
        "latency": latency_token_key(config.latency),
    }
    return "cfm:" + digest_text(json.dumps(token, sort_keys=True))[:16]


# ---------------------------------------------------------------------------
# CFMStats serialization (melds are plain dataclasses; decisions already
# define the as_dict/from_dict pair for trace args and corpus entries)


def cfm_stats_to_data(stats: CFMStats) -> Dict[str, object]:
    return {
        "melds": [asdict(m) for m in stats.melds],
        "decisions": [d.as_dict() for d in stats.decisions],
        "iterations": stats.iterations,
        "regions_considered": stats.regions_considered,
        "pairs_rejected_unprofitable": stats.pairs_rejected_unprofitable,
        "seconds": stats.seconds,
    }


def cfm_stats_from_data(data: Dict[str, object]) -> CFMStats:
    return CFMStats(
        melds=[MeldRecord(**m) for m in data["melds"]],
        decisions=[MeldingDecision.from_dict(d) for d in data["decisions"]],
        iterations=data["iterations"],
        regions_considered=data["regions_considered"],
        pairs_rejected_unprofitable=data["pairs_rejected_unprofitable"],
        seconds=data["seconds"],
    )


def _timing_from_event(event: Dict[str, object]) -> PassTiming:
    """Rebuild a :class:`PassTiming` from its serialized event form,
    flagged as a cache replay."""
    return PassTiming(
        name=event["pass"],
        seconds=event["seconds"],
        changed=event["changed"],
        blocks_before=event.get("blocks_before"),
        blocks_after=event.get("blocks_after"),
        instructions_before=event.get("instructions_before"),
        instructions_after=event.get("instructions_after"),
        cached=True,
    )


# ---------------------------------------------------------------------------
# disk layer


class DiskCompileCache:
    """One JSON file per key under ``path``; crash- and race-safe.

    Writes go to a per-process temp file and land via :func:`os.replace`
    (atomic within a directory), so two workers storing the same key
    leave one complete winner and readers never observe a torn file.
    Anything unreadable — truncated JSON, a foreign schema version, a
    payload missing required fields — counts as a miss and the file is
    evicted so the next lookup doesn't re-fail on it.
    """

    REQUIRED_FIELDS = ("optimized_ir", "seconds", "timings", "ir_stats")

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    def file_for(self, key: CacheKey) -> Path:
        return self.path / (digest_text(key[0], key[1])[:40] + ".json")

    def load(self, key: CacheKey) -> Optional[Dict[str, object]]:
        file = self.file_for(key)
        try:
            text = file.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
            if payload.get("schema") != CACHE_SCHEMA:
                raise ValueError(
                    f"schema {payload.get('schema')!r} != {CACHE_SCHEMA!r}")
            if (payload.get("pipeline_id"), payload.get("digest")) != key:
                raise ValueError("entry key does not match its filename")
            for name in self.REQUIRED_FIELDS:
                if name not in payload:
                    raise ValueError(f"missing field {name!r}")
        except Exception:
            self.evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: CacheKey, payload: Dict[str, object]) -> None:
        record = dict(payload)
        record["schema"] = CACHE_SCHEMA
        record["pipeline_id"], record["digest"] = key
        file = self.file_for(key)
        tmp = file.with_name(f"{file.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record), encoding="utf-8")
        os.replace(tmp, file)
        self.writes += 1

    def evict(self, key: CacheKey) -> None:
        try:
            self.file_for(key).unlink()
        except OSError:
            return
        self.evictions += 1

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "writes": self.writes}


# ---------------------------------------------------------------------------
# the cache


@dataclass
class CacheHit:
    """One successful lookup, fully rehydrated.

    ``module`` is freshly parsed (never aliased with other hits);
    ``timings`` are the original run's, each flagged ``cached``;
    ``program`` is the lowered µop program materialized against the
    parsed module and pre-seeded into the launch memo (None when the
    entry has no program for the requested latency model).
    """

    module: object
    seconds: float
    timings: List[PassTiming] = field(default_factory=list)
    program: Optional[object] = None
    cfm_seconds: float = 0.0
    cfm_stats: Optional[CFMStats] = None


class CompileCache:
    """Content-keyed cache of compile-pipeline results.

    In-process dict by default; pass ``disk=`` (a directory path or a
    :class:`DiskCompileCache`) to persist entries across processes —
    memory then acts as a write-through promotion layer over disk.

    Consumers re-parse the stored text on every hit, so each hit yields
    an independent module.  Printing and parsing round-trip exactly
    (``tests/ir/test_function_module.py``), so a replayed module is
    indistinguishable from a freshly optimized one; a replayed lowered
    program is bit-identical to re-lowering the replayed module
    (``tests/simt/test_program_serialize.py``).
    """

    def __init__(self, disk: Union[None, str, os.PathLike,
                                   DiskCompileCache] = None) -> None:
        if disk is not None and not isinstance(disk, DiskCompileCache):
            disk = DiskCompileCache(disk)
        self.disk: Optional[DiskCompileCache] = disk
        self._entries: Dict[CacheKey, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_env(cls, default_dir: Optional[str] = None) -> "CompileCache":
        """Cache configured by :data:`CACHE_ENV_VAR` (``"off"``/``"0"``/
        empty → in-process only; otherwise the value is the cache dir)."""
        value = os.environ.get(CACHE_ENV_VAR, default_dir)
        if not value or value.lower() in ("off", "0", "none"):
            return cls()
        return cls(disk=value)

    def __len__(self) -> int:
        return len(self._entries)

    # ---- keys --------------------------------------------------------------

    @staticmethod
    def key(pipeline_id: str, printed_ir: str) -> CacheKey:
        """Key for ``pipeline_id`` over already-printed input IR (callers
        holding the text avoid a second ``print_module``)."""
        return (pipeline_id, digest_text(printed_ir))

    @staticmethod
    def key_for(case, pipeline_id: str = "o3") -> CacheKey:
        """Key for a :class:`~repro.kernels.common.KernelCase`'s module."""
        return CompileCache.key(pipeline_id, print_module(case.module))

    # ---- lookup / store ----------------------------------------------------

    def lookup(self, key: CacheKey, want_ir_stats: bool = False,
               machine=None, *, latency=None) -> Optional[CacheHit]:
        """Return a :class:`CacheHit`, or None (counted as a miss).

        ``want_ir_stats=True`` rejects entries whose timings lack IR
        size stats (stored by a run that didn't collect them) — the
        entry stays valid for callers that don't need stats.  With a
        ``machine`` (a :class:`~repro.simt.MachineConfig`), a stored
        program matching its program token is materialized and seeded
        into the launch memo so the first launch skips lowering.
        ``latency=`` is the deprecated pre-PR-7 spelling.
        """
        machine = _machine_from_latency(machine, latency, "CompileCache.lookup")
        source = "memory"
        payload = self._entries.get(key)
        if payload is None and self.disk is not None:
            payload = self.disk.load(key)
            source = "disk"
        if payload is None:
            return self._miss(key)
        if want_ir_stats and not payload.get("ir_stats", False):
            # Valid but not rich enough for this caller; the recompile's
            # store() below will upgrade the entry in place.
            return self._miss(key)
        try:
            module = parse_module(payload["optimized_ir"])
            timings = [_timing_from_event(e) for e in payload["timings"]]
            cfm_payload = payload.get("cfm")
            cfm_stats = (cfm_stats_from_data(cfm_payload["stats"])
                         if cfm_payload else None)
        except Exception:
            # Poisoned entry (unparseable IR, malformed payload): evict
            # so the next lookup recompiles instead of re-failing here,
            # then report a plain miss.
            self._evict(key)
            return self._miss(key)
        program = self._seed(payload, module, machine)
        self._entries[key] = payload  # promote disk hits to memory
        self.hits += 1
        record_cache_lookup(True, source=source)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant("compile-cache:hit", cat="compile",
                           pid=COMPILE_PID,
                           args={"pipeline": key[0], "digest": key[1][:12],
                                 "source": source})
            for timing in timings:
                # Replay the original run's pass spans (flagged cached)
                # so the Perfetto timeline agrees with pass_timings.
                emit_pass_timing(timing, tracer)
        return CacheHit(
            module=module,
            seconds=payload["seconds"],
            timings=timings,
            program=program,
            cfm_seconds=cfm_payload["seconds"] if cfm_payload else 0.0,
            cfm_stats=cfm_stats,
        )

    def store(self, key: CacheKey, module: object, seconds: float,
              timings: List[PassTiming], *,
              ir_stats: bool = False,
              program: Optional[Dict[str, object]] = None,
              machine=None,
              latency=None,
              cfm_seconds: float = 0.0,
              cfm_stats: Optional[CFMStats] = None) -> None:
        """Store one pipeline result (write-through to disk if attached).

        ``program`` is a symbolic lowered program
        (:func:`repro.simt.lower_symbolic` of the optimized function)
        keyed by the ``machine``'s program token; ``latency=`` is the
        deprecated pre-PR-7 spelling.  ``cfm_stats`` marks a
        full-pipeline entry.
        """
        machine = _machine_from_latency(machine, latency, "CompileCache.store")
        payload: Dict[str, object] = {
            "optimized_ir": print_module(module),
            "seconds": seconds,
            "timings": pass_timing_events(timings),
            "ir_stats": bool(ir_stats),
        }
        if program is not None and machine is not None:
            payload["program"] = program
            payload["machine_key"] = machine_token_key(machine)
        if cfm_stats is not None:
            payload["cfm"] = {"seconds": cfm_seconds,
                              "stats": cfm_stats_to_data(cfm_stats)}
        self._entries[key] = payload
        if self.disk is not None:
            self.disk.store(key, payload)

    # ---- internals ---------------------------------------------------------

    def _seed(self, payload: Dict[str, object], module,
              machine) -> Optional[object]:
        """Materialize + memo-seed the entry's program, if usable."""
        data = payload.get("program")
        if data is None or machine is None:
            return None
        if payload.get("machine_key") != machine_token_key(machine):
            # Program was lowered for a different machine (or the entry
            # predates machine-keyed programs): the IR replay is still
            # good, the launch just re-lowers.
            return None
        try:
            function = module.functions[data["function"]]
            program = materialize_program(data, function)
        except (ProgramDecodeError, KeyError, TypeError):
            # The IR replay is still good; the launch just re-lowers.
            return None
        seed_program(function, machine, program)
        return program

    def _miss(self, key: CacheKey) -> None:
        self.misses += 1
        record_cache_lookup(False)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant("compile-cache:miss", cat="compile",
                           pid=COMPILE_PID,
                           args={"pipeline": key[0], "digest": key[1][:12]})
        return None

    def _evict(self, key: CacheKey) -> None:
        if self._entries.pop(key, None) is not None:
            self.evictions += 1
            record_cache_eviction()
        if self.disk is not None:
            self.disk.evict(key)

    def counters(self) -> Dict[str, object]:
        """Hit/miss/eviction counts (plus the disk layer's, if any)."""
        out: Dict[str, object] = {"hits": self.hits, "misses": self.misses,
                                  "evictions": self.evictions}
        if self.disk is not None:
            out["disk"] = self.disk.counters()
        return out
