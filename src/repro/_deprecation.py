"""Once-per-call-site deprecation warnings for legacy API spellings.

The PR-7 machine-configuration redesign keeps the old scattered kwargs
(``executor=`` / ``config=`` / ``latency=``) alive as thin aliases for
one release.  A long sweep or fuzz loop may pass a deprecated kwarg
millions of times from the same line; warning on every call would bury
the signal, and relying on :mod:`warnings`' built-in ``"default"``
filter is fragile under pytest (which rewrites the filter stack per
test).  So this module keeps its own registry keyed on the *call site*
(caller's filename + line): the first use from a given line warns, every
later use from that line is silent, and unrelated call sites still get
their own warning.
"""

from __future__ import annotations

import sys
import warnings
from typing import Set, Tuple

_seen: Set[Tuple[str, str, int]] = set()


def warn_once(message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` once per (message, call site).

    ``stacklevel`` counts like :func:`warnings.warn` from the caller of
    this function: ``3`` attributes the warning to whoever called the
    deprecated public entry point directly; add one per intermediate
    helper frame.
    """
    frame = sys._getframe(stacklevel - 1)
    key = (message, frame.f_code.co_filename, frame.f_lineno)
    if key in _seen:
        return
    _seen.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warn_registry() -> None:
    """Forget every recorded call site (test isolation helper)."""
    _seen.clear()
