"""DCT quantization kernel (§VI-A, from the CUDA samples).

In-place quantization of a DCT coefficient plane: positive and negative
coefficients quantize through different rounding paths, giving
*data-dependent* diamond divergence with similar instruction sequences on
both sides — the case branch fusion already handles, and where the paper
measured essentially no CFM speedup (-0.21%, statistically insignificant):
the divergent work is a handful of ALU instructions on *global-memory*
operands, so there is little latency to save by melding.

Quantization (integer, as in the CUDA sample's short path):

    q       = quant[idx % table_size]
    pos:  out = ((v + q/2) / q) * q
    neg:  out = -(((-v) + q/2) / q) * q
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import (
    AddressSpace,
    Constant,
    F32,
    FCmpPredicate,
    I32,
    ICmpPredicate,
    Opcode,
    pointer,
)

from .common import KernelCase, make_rng
from .dsl import GLOBAL_I32_PTR, KernelBuilder

GLOBAL_F32_PTR = pointer(F32, AddressSpace.GLOBAL)

#: quantization table period (8x8 DCT blocks in the original sample)
TABLE_SIZE = 64


def build_dct(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    k = KernelBuilder("dct_quant", params=[("plane", GLOBAL_I32_PTR),
                                           ("quant", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    gid = k.global_thread_id()
    value = k.load_at(k.param("plane"), gid, "v")
    qidx = k.and_(gid, k.const(TABLE_SIZE - 1))
    q = k.load_at(k.param("quant"), qidx, "q")
    half = k.lshr(q, k.const(1), "half")
    is_positive = k.icmp(ICmpPredicate.SGE, value, k.const(0))

    out = k.var("out", k.const(0))

    def positive():
        rounded = k.add(value, half)
        scaled = k.sdiv(rounded, q)
        k.set(out, k.mul(scaled, q))

    def negative():
        magnitude = k.sub(k.const(0), value)
        rounded = k.add(magnitude, half)
        scaled = k.sdiv(rounded, q)
        restored = k.mul(scaled, q)
        k.set(out, k.sub(k.const(0), restored))

    k.if_(is_positive, positive, negative, name="sign")
    k.store_at(k.param("plane"), gid, out.value)
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        plane = [rng.randrange(-1024, 1024) for _ in range(n)]
        quant = [rng.randrange(1, 64) for _ in range(TABLE_SIZE)]
        return {"plane": plane, "quant": quant}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        quant = inputs["quant"]
        for i, value in enumerate(inputs["plane"]):
            q = quant[i & (TABLE_SIZE - 1)]
            half = q >> 1
            if value >= 0:
                expected = ((value + half) // q) * q
            else:
                expected = -((((-value) + half) // q) * q)
            assert outputs["plane"][i] == expected, f"dct: index {i}"

    return KernelCase(name="dct", module=k.module, kernel="dct_quant",
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)


def build_dct_float(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    """Float variant of the quantization kernel (the CUDA sample operates
    on ``float`` planes).  Exercises the f32 pipeline end to end: fcmp
    divergence, fadd/fdiv/fmul melding, and the fptosi/sitofp rounding
    casts.

    Quantization:  out = trunc((|v| + q/2) / q) * q, sign restored.
    """
    k = KernelBuilder("dct_quant_f32", params=[("plane", GLOBAL_F32_PTR),
                                               ("quant", GLOBAL_F32_PTR)])
    tid = k.thread_id()
    gid = k.global_thread_id()
    value = k.load_at(k.param("plane"), gid, "v")
    qidx = k.and_(gid, k.const(TABLE_SIZE - 1))
    q = k.load_at(k.param("quant"), qidx, "q")
    half = k.fmul(q, Constant(F32, 0.5), "half")
    is_positive = k.fcmp(FCmpPredicate.OGE, value, Constant(F32, 0.0))

    def quantize(magnitude):
        rounded = k.fadd(magnitude, half)
        scaled = k.fdiv(rounded, q)
        steps = k.cast(Opcode.FPTOSI, scaled, I32)
        back = k.cast(Opcode.SITOFP, steps, F32)
        return k.fmul(back, q)

    # Each arm performs its own store (as the CUDA sample's in-place
    # update does); the stores keep -O3's if-conversion away, so the
    # diamond reaches CFM and the float ALU chains must meld.
    def positive():
        k.store_at(k.param("plane"), gid, quantize(value))

    def negative():
        magnitude = k.fsub(Constant(F32, 0.0), value)
        restored = quantize(magnitude)
        k.store_at(k.param("plane"), gid,
                   k.fsub(Constant(F32, 0.0), restored))

    k.if_(is_positive, positive, negative, name="sign")
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        plane = [float(rng.randrange(-1024, 1024)) / 4.0 for _ in range(n)]
        quant = [float(rng.randrange(1, 64)) for _ in range(TABLE_SIZE)]
        return {"plane": plane, "quant": quant}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        quant = inputs["quant"]
        for i, value in enumerate(inputs["plane"]):
            q = quant[i & (TABLE_SIZE - 1)]
            magnitude = value if value >= 0.0 else -value
            steps = int((magnitude + q * 0.5) / q)  # trunc toward zero
            expected = float(steps) * q
            if value < 0.0:
                expected = -expected
            assert outputs["plane"][i] == expected, f"dct_f32: index {i}"

    return KernelCase(name="dct_f32", module=k.module, kernel="dct_quant_f32",
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)
