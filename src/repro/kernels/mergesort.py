"""Bottom-up merge sort (§VI-A).

Each thread block sorts its bucket in shared memory: pass ``w`` merges
runs of width ``w`` into ``2w``; thread ``t`` of the active set merges
the pair starting at ``t * 2w``.  The merge loop's take-left/take-right
decision is *data dependent*, producing the simple diamond divergence the
paper notes branch fusion could also handle — CFM melds the two sides
(shared-memory load + store + pointer bump each).

Ping-pong between two shared buffers is avoided by a copy-back step per
pass (every thread copies one element), keeping the kernel free of
extra address-selection divergence that the original doesn't have.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import I1, I32, ICmpPredicate, const_bool

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, KernelBuilder


def build_mergesort(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    num = block_size
    k = KernelBuilder("mergesort", params=[("values", GLOBAL_I32_PTR)])
    src = k.shared_array("src", I32, num)
    dst = k.shared_array("dst", I32, num)

    tid = k.thread_id()
    gid = k.global_thread_id()
    k.store_at(src, tid, k.load_at(k.param("values"), gid))
    k.barrier()

    width = k.var("width", k.const(1))

    def pass_cond():
        return k.icmp(ICmpPredicate.SLT, width.value, k.const(num))

    def pass_body():
        w = width.value
        two_w = k.shl(w, k.const(1), "two_w")
        pairs = k.udiv(k.const(num), two_w, "pairs")
        active = k.icmp(ICmpPredicate.ULT, tid, pairs)

        def merge_pair():
            base = k.mul(tid, two_w, "base")
            i = k.var("i", k.const(0))
            j = k.var("j", k.const(0))

            def merge_cond():
                total = k.add(i.value, j.value)
                return k.icmp(ICmpPredicate.SLT, total, two_w)

            def merge_body():
                left_done = k.icmp(ICmpPredicate.SGE, i.value, w)
                right_done = k.icmp(ICmpPredicate.SGE, j.value, w)
                take_left = k.var("take_left", const_bool(False))

                def right_exhausted():
                    k.set(take_left, const_bool(True))

                def probe():
                    def left_exhausted():
                        k.set(take_left, const_bool(False))

                    def compare():
                        left_val = k.load_at(src, k.add(base, i.value))
                        right_idx = k.add(k.add(base, w), j.value)
                        right_val = k.load_at(src, right_idx)
                        k.set(take_left,
                              k.icmp(ICmpPredicate.SLE, left_val, right_val))

                    k.if_(left_done, left_exhausted, compare, name="probe")

                k.if_(right_done, right_exhausted, probe, name="exh")

                out_idx = k.add(base, k.add(i.value, j.value), "out")

                def take_from_left():
                    value = k.load_at(src, k.add(base, i.value))
                    k.store_at(dst, out_idx, value)
                    k.set(i, k.add(i.value, k.const(1)))

                def take_from_right():
                    value = k.load_at(src, k.add(k.add(base, w), j.value))
                    k.store_at(dst, out_idx, value)
                    k.set(j, k.add(j.value, k.const(1)))

                k.if_(take_left.value, take_from_left, take_from_right,
                      name="pick")

            k.while_(merge_cond, merge_body, name="merge")

        k.if_(active, merge_pair, name="active")
        k.barrier()
        k.store_at(src, tid, k.load_at(dst, tid))
        k.barrier()
        k.set(width, k.shl(width.value, k.const(1)))

    k.while_(pass_cond, pass_body, name="pass")
    k.store_at(k.param("values"), gid, k.load_at(src, tid))
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {"values": random_ints(rng, n, 0, 2**20)}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        for block in range(grid_dim):
            bucket_in = inputs["values"][block * num:(block + 1) * num]
            bucket_out = outputs["values"][block * num:(block + 1) * num]
            assert bucket_out == sorted(bucket_in), \
                f"mergesort: bucket {block} not sorted"

    return KernelCase(name="mergesort", module=k.module, kernel="mergesort",
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)
