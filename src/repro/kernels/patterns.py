"""The three control-flow/instruction patterns of Table I.

Table I compares what each technique can meld:

| pattern                                   | tail merging | branch fusion | CFM |
|-------------------------------------------|:---:|:---:|:---:|
| diamond, identical instruction sequences  |  ✓  |  ✓  |  ✓  |
| diamond, distinct instruction sequences   |  ✗  |  ✓  |  ✓  |
| complex control flow                      |  ✗  |  ✗  |  ✓  |

Each builder returns a kernel whose only tid-dependent divergence is the
pattern itself, so "technique succeeded" is observable as the divergent
branch disappearing (or strictly decreasing, for the complex pattern).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import I32, ICmpPredicate

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, KernelBuilder


def build_diamond_identical(block_size: int = 32, grid_dim: int = 1) -> KernelCase:
    """Both sides execute the *same instructions on the same operands* —
    the only case classic tail merging handles."""
    k = KernelBuilder("diamond_identical", params=[("data", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    gid = k.global_thread_id()
    parity = k.and_(tid, k.const(1))
    cond = k.icmp(ICmpPredicate.EQ, parity, k.const(0))

    def side():
        value = k.load_at(k.param("data"), gid)
        bumped = k.add(value, k.const(7))
        scaled = k.mul(bumped, k.const(3))
        k.store_at(k.param("data"), gid, scaled)

    k.if_(cond, side, side, name="diamond")
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        return {"data": random_ints(make_rng(seed), n, 0, 2**10)}

    def check(inputs, outputs):
        for i, value in enumerate(inputs["data"]):
            assert outputs["data"][i] == (value + 7) * 3

    return KernelCase("diamond_identical", k.module, "diamond_identical",
                      grid_dim, block_size, make_buffers, check=check)


def build_diamond_distinct(block_size: int = 32, grid_dim: int = 1) -> KernelCase:
    """Same diamond shape, side-specific operands and opcodes — beyond
    tail merging, within branch fusion's (and CFM's) reach."""
    k = KernelBuilder("diamond_distinct", params=[("a", GLOBAL_I32_PTR),
                                                  ("b", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    gid = k.global_thread_id()
    parity = k.and_(tid, k.const(1))
    cond = k.icmp(ICmpPredicate.EQ, parity, k.const(0))

    def then_side():
        value = k.load_at(k.param("a"), gid)
        result = k.mul(k.add(value, k.const(5)), k.const(3))
        k.store_at(k.param("a"), gid, result)

    def else_side():
        value = k.load_at(k.param("b"), gid)
        result = k.mul(k.sub(value, k.const(2)), k.const(9))
        k.store_at(k.param("b"), gid, result)

    k.if_(cond, then_side, else_side, name="diamond")
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {"a": random_ints(rng, n, 0, 2**10),
                "b": random_ints(rng, n, 0, 2**10)}

    def check(inputs, outputs):
        for i in range(n):
            tid = i % block_size
            if tid % 2 == 0:
                assert outputs["a"][i] == (inputs["a"][i] + 5) * 3
                assert outputs["b"][i] == inputs["b"][i]
            else:
                assert outputs["b"][i] == (inputs["b"][i] - 2) * 9
                assert outputs["a"][i] == inputs["a"][i]

    return KernelCase("diamond_distinct", k.module, "diamond_distinct",
                      grid_dim, block_size, make_buffers, check=check)


def build_complex_pattern(block_size: int = 32, grid_dim: int = 1) -> KernelCase:
    """Each side of the divergent branch is a sequence of two if-then
    regions (the SB3 shape of Figure 6) — only CFM melds this."""
    k = KernelBuilder("complex_cf", params=[("a", GLOBAL_I32_PTR),
                                            ("b", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    gid = k.global_thread_id()
    parity = k.and_(tid, k.const(1))
    cond = k.icmp(ICmpPredicate.EQ, parity, k.const(0))

    def make_side(param: str):
        def side():
            value = k.load_at(k.param(param), gid)
            big = k.icmp(ICmpPredicate.SGT, value, k.const(512))

            def clip_high():
                k.store_at(k.param(param), gid, k.sub(value, k.const(512)))

            k.if_(big, clip_high, name="hi")
            value2 = k.load_at(k.param(param), gid)
            small = k.icmp(ICmpPredicate.SLT, value2, k.const(64))

            def boost_low():
                k.store_at(k.param(param), gid, k.add(value2, k.const(64)))

            k.if_(small, boost_low, name="lo")

        return side

    k.if_(cond, make_side("a"), make_side("b"), name="complex")
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {"a": random_ints(rng, n, 0, 2**10),
                "b": random_ints(rng, n, 0, 2**10)}

    def reference(value: int) -> int:
        if value > 512:
            value -= 512
        if value < 64:
            value += 64
        return value

    def check(inputs, outputs):
        for i in range(n):
            tid = i % block_size
            if tid % 2 == 0:
                assert outputs["a"][i] == reference(inputs["a"][i])
                assert outputs["b"][i] == inputs["b"][i]
            else:
                assert outputs["b"][i] == reference(inputs["b"][i])
                assert outputs["a"][i] == inputs["a"][i]

    return KernelCase("complex_cf", k.module, "complex_cf",
                      grid_dim, block_size, make_buffers, check=check)


PATTERN_BUILDERS = {
    "diamond-identical": build_diamond_identical,
    "diamond-distinct": build_diamond_distinct,
    "complex": build_complex_pattern,
}
