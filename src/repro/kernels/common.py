"""Shared kernel-case plumbing for the benchmark suite.

A :class:`KernelCase` bundles everything a harness needs to run one
kernel configuration: the module, launch geometry, an input generator,
and a reference checker.  Kernel builders are *parametric in block size*
— the paper treats block size as exogenous and sweeps it (§VI-A), and
loop bounds that the real compiler would see as ``#define`` constants are
baked in so the unroller can do its job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.ir.function import Function, Module


@dataclass
class KernelCase:
    """One runnable kernel configuration."""

    name: str
    module: Module
    kernel: str
    grid_dim: int
    block_dim: int
    #: seed -> {buffer name: initial contents}
    make_buffers: Callable[[int], Dict[str, List[int]]]
    scalars: Dict[str, int] = field(default_factory=dict)
    #: (inputs, outputs) -> None, raising AssertionError on mismatch
    check: Optional[Callable[[Dict[str, List[int]], Dict[str, List[int]]], None]] = None

    @property
    def function(self) -> Function:
        return self.module.function(self.kernel)

    def verify_outputs(self, inputs: Dict[str, List[int]],
                       outputs: Dict[str, List[int]]) -> None:
        if self.check is not None:
            self.check(inputs, outputs)


def random_ints(rng: random.Random, count: int, lo: int = 0, hi: int = 2**20) -> List[int]:
    return [rng.randrange(lo, hi) for _ in range(count)]


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
