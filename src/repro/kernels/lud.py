"""LUD perimeter kernel (Rodinia, §VI-A).

``lud_perimeter`` updates the perimeter of the current tile: one half of
the threads process a *row* strip, the other half a *column* strip, with
structurally similar bodies — a large diamond that branch fusion can also
merge once loops are unrolled.  Two properties the paper measures are
reproduced here:

* **block-size-dependent divergence**: the row/column split is
  ``(tid & (block_size / 4)) == 0`` — for block sizes 16/32/64 the two
  groups interleave *within* a warp (divergent, as the paper reports for
  those sizes), while for 128+ the groups align with warp boundaries and
  the branch is dynamically convergent (the paper's best-performing LUD
  configuration is the non-divergent one, where CFM must not slow the
  kernel down);
* **long straight-line arms** (``CHUNK`` unrolled element updates per
  side) that make the Needleman–Wunsch instruction alignment the dominant
  compile-time cost — Table II's 1.57× LUD compile-time entry.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import AddressSpace, I32, ICmpPredicate, Opcode, pointer

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, KernelBuilder

FLAT_I32_PTR = pointer(I32, AddressSpace.FLAT)

#: elements updated per thread (the unrolled inner loop of the original;
#: the paper notes LUD's diamond arms reach hundreds of instructions)
CHUNK = 16

_MASK = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value >= (1 << 31) else value


def build_lud(block_size: int = 32, grid_dim: int = 2) -> KernelCase:
    k = KernelBuilder("lud_perimeter", params=[("matrix", GLOBAL_I32_PTR),
                                               ("diag", GLOBAL_I32_PTR)])
    sdiag = k.shared_array("sdiag", I32, CHUNK)

    tid = k.thread_id()
    gid = k.global_thread_id()

    # Stage the diagonal tile in shared memory, branch-free so the
    # staging itself is never divergent (the kernel's only divergence is
    # the row/column split below, which the paper's block-size study
    # isolates).  Small blocks store several strided slots per thread;
    # large blocks redundantly re-write the same values.
    diag_idx = k.and_(tid, k.const(CHUNK - 1))
    for offset in range(0, CHUNK, min(block_size, CHUNK)):
        slot = diag_idx if offset == 0 else k.add(diag_idx, k.const(offset))
        k.store_at(sdiag, slot, k.load_at(k.param("diag"), slot))
    k.barrier()

    group_bit = k.and_(tid, k.const(max(1, block_size // 4)))
    is_row_group = k.icmp(ICmpPredicate.EQ, group_bit, k.const(0))
    row_base = k.mul(gid, k.const(CHUNK), "row_base")
    # The original kernel indexes the matrix through a generic pointer;
    # HIPCC lowers those accesses to FLAT instructions (which is why the
    # paper's Figure 10 has a flat-memory column for LUD).
    matrix_flat = k.cast(Opcode.BITCAST, k.param("matrix"), FLAT_I32_PTR,
                         "matrix.flat")

    def process_row():
        for e in range(CHUNK):
            idx = k.add(row_base, k.const(e))
            value = k.load_at(matrix_flat, idx)
            pivot = k.load_at(sdiag, k.const(e))
            scaled = k.mul(value, pivot)
            shifted = k.ashr(scaled, k.const(4))
            updated = k.sub(value, shifted)
            k.store_at(matrix_flat, idx, updated)

    def process_column():
        for e in range(CHUNK):
            idx = k.add(row_base, k.const(e))
            value = k.load_at(matrix_flat, idx)
            pivot = k.load_at(sdiag, k.const(e))
            scaled = k.mul(value, pivot)
            shifted = k.ashr(scaled, k.const(4))
            updated = k.add(value, shifted)
            k.store_at(matrix_flat, idx, updated)

    k.if_(is_row_group, process_row, process_column, name="strip")
    k.finish()

    n = block_size * grid_dim * CHUNK

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {"matrix": random_ints(rng, n, 0, 2**12),
                "diag": random_ints(rng, CHUNK, 1, 2**8)}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        diag = inputs["diag"]
        group_mask = max(1, block_size // 4)
        for block in range(grid_dim):
            for tid_ in range(block_size):
                g = block * block_size + tid_
                row = (tid_ & group_mask) == 0
                for e in range(CHUNK):
                    idx = g * CHUNK + e
                    value = inputs["matrix"][idx]
                    shifted = _wrap32(value * diag[e]) >> 4
                    expected = _wrap32(value - shifted) if row \
                        else _wrap32(value + shifted)
                    assert outputs["matrix"][idx] == expected, \
                        f"lud: index {idx}"

    return KernelCase(name="lud", module=k.module, kernel="lud_perimeter",
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)
