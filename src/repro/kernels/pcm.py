"""Partition and Concurrent Merge (PCM) — odd-even bucket kernel (§VI-A).

The original PCM (Herruzo et al.) does odd-even merging of sorted buckets
with nested data-dependent branches; the paper highlights two structural
properties that drive both its speedup and its compile-time cost
(Table II):

* the divergent branch's two sides contain *loops over the bucket*, which
  ``-O3`` fully unrolls into **multiple isomorphic subgraph pairs** — the
  greedy ``m × n`` profitability scan then dominates compile time;
* the loop bodies are compare-exchange steps on **shared memory**, so
  melding saves high-latency LDS issues.

This reproduction keeps exactly those properties: every thread owns a
bucket of ``BUCKET`` elements in LDS; per round, odd/even threads run an
ascending/descending bubble pass over their own bucket (nested
constant-trip loops with a data-dependent swap branch inside), with
barriers between rounds.  Buckets are thread-private, so the kernel is
race-free and its semantics have an exact Python mirror.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import I32, ICmpPredicate

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, KernelBuilder

#: elements per thread bucket (compile-time constant; loops unroll)
BUCKET = 4
#: odd-even rounds
ROUNDS = 2


def build_pcm(block_size: int = 32, grid_dim: int = 2) -> KernelCase:
    k = KernelBuilder("pcm", params=[("data", GLOBAL_I32_PTR)])
    shared = k.shared_array("buckets", I32, block_size * BUCKET)

    tid = k.thread_id()
    gid = k.global_thread_id()
    base = k.mul(tid, k.const(BUCKET), "base")
    gbase = k.mul(gid, k.const(BUCKET), "gbase")
    for e in range(BUCKET):
        k.store_at(shared, k.add(base, k.const(e)),
                   k.load_at(k.param("data"), k.add(gbase, k.const(e))))
    k.barrier()

    def bubble_pass(ascending: bool) -> None:
        def outer(pass_value):
            def inner(idx_value):
                left_idx = k.add(base, idx_value)
                right_idx = k.add(left_idx, k.const(1))
                left = k.load_at(shared, left_idx)
                right = k.load_at(shared, right_idx)
                pred = ICmpPredicate.SGT if ascending else ICmpPredicate.SLT
                out_of_order = k.icmp(pred, left, right)

                def swap():
                    k.store_at(shared, left_idx, right)
                    k.store_at(shared, right_idx, left)

                k.if_(out_of_order, swap, name="swap")

            k.for_range("idx", k.const(0), k.const(BUCKET - 1), inner)

        k.for_range("pass", k.const(0), k.const(BUCKET - 1), outer)

    for round_id in range(ROUNDS):
        parity = k.and_(k.add(tid, k.const(round_id)), k.const(1))
        is_even = k.icmp(ICmpPredicate.EQ, parity, k.const(0))
        k.if_(is_even,
              lambda: bubble_pass(ascending=True),
              lambda: bubble_pass(ascending=False),
              name=f"round{round_id}")
        k.barrier()

    for e in range(BUCKET):
        k.store_at(k.param("data"), k.add(gbase, k.const(e)),
                   k.load_at(shared, k.add(base, k.const(e))))
    k.finish()

    n = block_size * grid_dim * BUCKET

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {"data": random_ints(rng, n, 0, 2**20)}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        expected = _reference(inputs["data"], block_size, grid_dim)
        assert outputs["data"] == expected, "pcm: bucket contents mismatch"

    return KernelCase(name="pcm", module=k.module, kernel="pcm",
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)


def _reference(data: List[int], block_size: int, grid_dim: int) -> List[int]:
    out = list(data)
    for block in range(grid_dim):
        for tid in range(block_size):
            start = (block * block_size + tid) * BUCKET
            bucket = out[start:start + BUCKET]
            for round_id in range(ROUNDS):
                ascending = ((tid + round_id) & 1) == 0
                for _ in range(BUCKET - 1):
                    for idx in range(BUCKET - 1):
                        a, b = bucket[idx], bucket[idx + 1]
                        if (a > b) if ascending else (a < b):
                            bucket[idx], bucket[idx + 1] = b, a
            out[start:start + BUCKET] = bucket
    return out
