"""The paper's benchmark kernels, written against the builder DSL.

``ALL_BUILDERS`` maps benchmark names (as the paper labels them) to
block-size-parametric constructors returning :class:`KernelCase`.
"""

from typing import Callable, Dict

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, SHARED_I32_PTR, KernelBuilder, Var
from .synthetic import (
    SYNTHETIC_BUILDERS,
    build_sb1,
    build_sb1_r,
    build_sb2,
    build_sb2_r,
    build_sb3,
    build_sb3_r,
)
from .bitonic import build_bitonic
from .dct import build_dct, build_dct_float
from .mergesort import build_mergesort
from .pcm import build_pcm
from .lud import build_lud

REAL_WORLD_BUILDERS: Dict[str, Callable[..., KernelCase]] = {
    "LUD": build_lud,
    "BIT": build_bitonic,
    "DCT": build_dct,
    "MS": build_mergesort,
    "PCM": build_pcm,
}

#: extensions beyond the paper's benchmark set (kept out of the paper's
#: sweeps so the figures stay comparable)
EXTRA_BUILDERS: Dict[str, Callable[..., KernelCase]] = {
    "DCT-F32": build_dct_float,
}

ALL_BUILDERS: Dict[str, Callable[..., KernelCase]] = {
    **SYNTHETIC_BUILDERS,
    **REAL_WORLD_BUILDERS,
}

__all__ = [
    "KernelCase", "KernelBuilder", "Var",
    "GLOBAL_I32_PTR", "SHARED_I32_PTR",
    "make_rng", "random_ints",
    "SYNTHETIC_BUILDERS", "REAL_WORLD_BUILDERS", "ALL_BUILDERS",
    "EXTRA_BUILDERS",
    "build_sb1", "build_sb1_r", "build_sb2", "build_sb2_r",
    "build_sb3", "build_sb3_r",
    "build_bitonic", "build_dct", "build_dct_float", "build_mergesort",
    "build_pcm", "build_lud",
]
