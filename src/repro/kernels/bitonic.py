"""Bitonic sort — the paper's running example (Figure 1).

Each thread block stages one bucket of ``NUM = block_size`` elements in
shared memory and sorts it with the bitonic network.  The divergent
branch ``(tid & k) == 0`` selects between ascending and descending
compare-and-swap bodies — structurally similar if-then regions that
CFM melds (Figure 5 shows the transformation pipeline on this kernel).

``NUM`` is a compile-time constant (as in the CUDA original), so ``-O3``
fully unrolls both sort loops; melding happens on the unrolled regions
exactly as described in §IV-B.  Unrolling is optional here because CFM
also handles the rolled form (the divergent region is inside the loop
body) — the evaluation uses the rolled form to keep simulated code sizes
manageable, which does not change who wins (divergence is per-iteration).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import I32, ICmpPredicate

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, KernelBuilder


def build_bitonic(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    """Bitonic sort of ``grid_dim`` buckets of ``block_size`` elements."""
    num = block_size
    k = KernelBuilder("bitonic", params=[("values", GLOBAL_I32_PTR)])
    shared = k.shared_array("shared", I32, num)

    tid = k.thread_id()
    gid = k.global_thread_id()
    k.store_at(shared, tid, k.load_at(k.param("values"), gid))
    k.barrier()

    kk = k.var("k", k.const(2))

    def outer_cond():
        return k.icmp(ICmpPredicate.SLE, kk.value, k.const(num))

    def outer_body():
        j = k.var("j", k.lshr(kk.value, k.const(1)))

        def inner_cond():
            return k.icmp(ICmpPredicate.UGT, j.value, k.const(0))

        def inner_body():
            ixj = k.xor(tid, j.value, "ixj")
            in_range = k.icmp(ICmpPredicate.UGT, ixj, tid)

            def compare_swap():
                direction = k.and_(tid, kk.value)
                ascending = k.icmp(ICmpPredicate.EQ, direction, k.const(0))

                def asc():
                    other = k.load_at(shared, ixj)
                    mine = k.load_at(shared, tid)
                    out_of_order = k.icmp(ICmpPredicate.SLT, other, mine)

                    def swap():
                        k.store_at(shared, tid, other)
                        k.store_at(shared, ixj, mine)

                    k.if_(out_of_order, swap, name="swap.a")

                def desc():
                    other = k.load_at(shared, ixj)
                    mine = k.load_at(shared, tid)
                    out_of_order = k.icmp(ICmpPredicate.SGT, other, mine)

                    def swap():
                        k.store_at(shared, tid, other)
                        k.store_at(shared, ixj, mine)

                    k.if_(out_of_order, swap, name="swap.d")

                k.if_(ascending, asc, desc, name="dir")

            k.if_(in_range, compare_swap, name="range")
            k.barrier()
            k.set(j, k.lshr(j.value, k.const(1)))

        k.while_(inner_cond, inner_body, name="inner")
        k.set(kk, k.shl(kk.value, k.const(1)))

    k.while_(outer_cond, outer_body, name="outer")
    k.store_at(k.param("values"), gid, k.load_at(shared, tid))
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {"values": random_ints(rng, n, 0, 2**20)}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        for block in range(grid_dim):
            bucket_in = inputs["values"][block * num:(block + 1) * num]
            bucket_out = outputs["values"][block * num:(block + 1) * num]
            assert bucket_out == sorted(bucket_in), \
                f"bitonic: bucket {block} not sorted"

    return KernelCase(name="bitonic", module=k.module, kernel="bitonic",
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)
