"""Synthetic benchmarks SB1, SB2, SB3 and their -R variants (§VI-A, Fig. 6).

Each kernel has two nested (constant-bound, hence fully unrollable) loops
whose inner body is a divergent if-then-else keyed on an odd-even mix of
the thread id.  The *if* side operates on arrays ``a``/``b`` staged in
shared memory, the *else* side on ``p``/``q``:

* **SB1** — diamond: the two sides are single blocks with identical
  computations (A2/A3 of Figure 6);
* **SB2** — each side contains an if-then region (B2/B3) with identical
  then-blocks;
* **SB3** — each side contains *two* sequential if-then regions
  (C2,C6 vs C3,C5), so CFM can meld multiple subgraph pairs;
* **-R variants** — same control flow, but the else-side computations are
  different instruction sequences, so instruction alignment is imperfect
  and CFM must insert selects/unpredicated gaps.

Reference semantics are mirrored in plain Python (with 32-bit wrapping)
so tests can validate outputs independently of the simulator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.ir import I32, ICmpPredicate
from repro.ir.values import Value

from .common import KernelCase, make_rng, random_ints
from .dsl import GLOBAL_I32_PTR, KernelBuilder

#: outer × inner loop trip counts (constants, as the paper's NUM-style
#: defines; both loops fully unroll under -O3)
OUTER_TRIPS = 2
INNER_TRIPS = 2

_MASK = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value >= (1 << 31) else value


# ---- the computation bodies -------------------------------------------------
#
# Every computation exists twice: as DSL emission (building IR) and as a
# Python reference.  Keeping them adjacent makes divergence between the
# two easy to spot in review.


def _emit_compute_main(k: KernelBuilder, x: Value, y: Value, t: Value) -> Value:
    s = k.add(x, y)
    d = k.sub(x, y)
    h = k.ashr(d, k.const(1))
    m = k.xor(s, t)
    return k.add(m, h)


def _ref_compute_main(x: int, y: int, t: int) -> int:
    s = _wrap32(x + y)
    d = _wrap32(x - y)
    h = d >> 1
    m = _wrap32(s ^ t)
    return _wrap32(m + h)


def _emit_compute_alt(k: KernelBuilder, x: Value, y: Value, t: Value) -> Value:
    m = k.mul(x, k.const(3))
    s = k.shl(y, k.const(2))
    o = k.or_(m, k.const(1))
    e = k.xor(o, s)
    return k.sub(e, t)


def _ref_compute_alt(x: int, y: int, t: int) -> int:
    m = _wrap32(x * 3)
    s = _wrap32(y << 2)
    o = _wrap32(m | 1)
    e = _wrap32(o ^ s)
    return _wrap32(e - t)


def _emit_guard(k: KernelBuilder, x: Value, y: Value) -> Value:
    return k.icmp(ICmpPredicate.SGT, x, y)


# ---- kernel builder ------------------------------------------------------------


def _build_synthetic(
    name: str,
    pattern: str,
    randomized: bool,
    block_size: int,
    grid_dim: int,
) -> KernelCase:
    """Shared frame for all six synthetic kernels."""
    k = KernelBuilder(name, params=[("a", GLOBAL_I32_PTR), ("b", GLOBAL_I32_PTR),
                                    ("p", GLOBAL_I32_PTR), ("q", GLOBAL_I32_PTR)])
    sa = k.shared_array("sa", I32, block_size)
    sb = k.shared_array("sb", I32, block_size)
    sp = k.shared_array("sp", I32, block_size)
    sq = k.shared_array("sq", I32, block_size)

    tid = k.thread_id()
    gid = k.global_thread_id()
    for shared, param in ((sa, "a"), (sb, "b"), (sp, "p"), (sq, "q")):
        k.store_at(shared, tid, k.load_at(k.param(param), gid))
    k.barrier()

    # else-side computation differs only in the -R variants
    emit_else = _emit_compute_alt if randomized else _emit_compute_main

    def inner_body(t_const: int, u_const: int) -> None:
        t = k.const(t_const * INNER_TRIPS + u_const)
        mix = k.xor(tid, k.const(u_const))
        parity = k.and_(mix, k.const(1))
        cond = k.icmp(ICmpPredicate.EQ, parity, k.const(0))

        def then_side() -> None:
            _emit_side(k, sa, sb, tid, t, _emit_compute_main, pattern,
                       randomized=False)

        def else_side() -> None:
            _emit_side(k, sp, sq, tid, t, emit_else, pattern,
                       randomized=randomized)

        k.if_(cond, then_side, else_side, name=f"div{t_const}{u_const}")

    for t_const in range(OUTER_TRIPS):
        for u_const in range(INNER_TRIPS):
            inner_body(t_const, u_const)
            k.barrier()

    for shared, param in ((sa, "a"), (sb, "b"), (sp, "p"), (sq, "q")):
        k.store_at(k.param(param), gid, k.load_at(shared, tid))
    k.finish()

    n = block_size * grid_dim

    def make_buffers(seed: int) -> Dict[str, List[int]]:
        rng = make_rng(seed)
        return {name: random_ints(rng, n, 0, 2**16) for name in "abpq"}

    def check(inputs: Dict[str, List[int]], outputs: Dict[str, List[int]]) -> None:
        expected = _reference(pattern, randomized, inputs, block_size, grid_dim)
        for buf in "abpq":
            assert outputs[buf] == expected[buf], f"{name}: buffer {buf} mismatch"

    return KernelCase(name=name, module=k.module, kernel=name,
                      grid_dim=grid_dim, block_dim=block_size,
                      make_buffers=make_buffers, check=check)


def _emit_side(k: KernelBuilder, dst, aux, tid, t, emit_compute, pattern: str,
               randomized: bool) -> None:
    """One side of the divergent branch, shaped per Figure 6.

    The -R else sides also perform an extra shared-memory load, so their
    memory instruction sequences (not just their ALU sequences) fail to
    align perfectly — this reproduces Figure 10's smaller LDS reduction
    for the -R variants.
    """
    def compute(lhs: Value, rhs: Value) -> Value:
        result = emit_compute(k, lhs, rhs, t)
        if randomized:
            extra = k.load_at(aux, tid)
            result = k.xor(result, extra)
        return result

    x = k.load_at(dst, tid)
    y = k.load_at(aux, tid)
    if pattern == "SB1":
        k.store_at(dst, tid, compute(x, y))
        return
    if pattern == "SB2":
        def guarded() -> None:
            k.store_at(dst, tid, compute(x, y))
        k.if_(_emit_guard(k, x, y), guarded, name="g")
        return
    if pattern == "SB3":
        def first() -> None:
            k.store_at(dst, tid, compute(x, y))
        k.if_(_emit_guard(k, x, y), first, name="g1")
        x2 = k.load_at(dst, tid)
        def second() -> None:
            k.store_at(dst, tid, compute(y, x2))
        k.if_(_emit_guard(k, y, x2), second, name="g2")
        return
    raise ValueError(f"unknown pattern {pattern}")


# ---- Python reference ---------------------------------------------------------


def _reference(pattern: str, randomized: bool, inputs: Dict[str, List[int]],
               block_size: int, grid_dim: int) -> Dict[str, List[int]]:
    state = {name: list(values) for name, values in inputs.items()}
    ref_else = _ref_compute_alt if randomized else _ref_compute_main

    def side(dst: List[int], aux: List[int], idx: int, t: int, compute,
             extra_load: bool) -> None:
        def apply(lhs: int, rhs: int) -> int:
            result = compute(lhs, rhs, t)
            if extra_load:
                result = _wrap32(result ^ aux[idx])
            return result

        if pattern == "SB1":
            dst[idx] = apply(dst[idx], aux[idx])
        elif pattern == "SB2":
            if dst[idx] > aux[idx]:
                dst[idx] = apply(dst[idx], aux[idx])
        elif pattern == "SB3":
            x, y = dst[idx], aux[idx]
            if x > y:
                dst[idx] = apply(x, y)
            x2 = dst[idx]
            if y > x2:
                dst[idx] = apply(y, x2)

    for block in range(grid_dim):
        base = block * block_size
        for t_const in range(OUTER_TRIPS):
            for u_const in range(INNER_TRIPS):
                t = t_const * INNER_TRIPS + u_const
                for tid in range(block_size):
                    idx = base + tid
                    if ((tid ^ u_const) & 1) == 0:
                        side(state["a"], state["b"], idx, t,
                             _ref_compute_main, extra_load=False)
                    else:
                        side(state["p"], state["q"], idx, t,
                             ref_else, extra_load=randomized)
    return state


# ---- public constructors -------------------------------------------------------


def build_sb1(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    return _build_synthetic("sb1", "SB1", False, block_size, grid_dim)


def build_sb1_r(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    return _build_synthetic("sb1_r", "SB1", True, block_size, grid_dim)


def build_sb2(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    return _build_synthetic("sb2", "SB2", False, block_size, grid_dim)


def build_sb2_r(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    return _build_synthetic("sb2_r", "SB2", True, block_size, grid_dim)


def build_sb3(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    return _build_synthetic("sb3", "SB3", False, block_size, grid_dim)


def build_sb3_r(block_size: int = 64, grid_dim: int = 2) -> KernelCase:
    return _build_synthetic("sb3_r", "SB3", True, block_size, grid_dim)


SYNTHETIC_BUILDERS: Dict[str, Callable[..., KernelCase]] = {
    "SB1": build_sb1,
    "SB1-R": build_sb1_r,
    "SB2": build_sb2,
    "SB2-R": build_sb2_r,
    "SB3": build_sb3,
    "SB3-R": build_sb3_r,
}
