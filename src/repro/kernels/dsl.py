"""Structured kernel-construction DSL.

The paper's benchmarks are CUDA/HIP kernels; this DSL plays the role of
the device-code frontend.  A :class:`KernelBuilder` exposes CUDA-like
primitives (``thread_id``, ``barrier``, shared arrays) plus structured
control flow (``if_``, ``while_``) and *mutable variables* that are
lowered to SSA automatically: φ nodes are placed at joins and loop
headers, and trivial φs are cleaned up on the fly.

Example — an axpy-style kernel::

    k = KernelBuilder("scale", params=[("data", GLOBAL_I32_PTR), ("n", I32)])
    tid = k.thread_id()
    guard = k.icmp(ICmpPredicate.SLT, tid, k.param("n"))

    def body():
        value = k.load_at(k.param("data"), tid)
        k.store_at(k.param("data"), tid, k.mul(value, k.const(2)))

    k.if_(guard, body)
    kernel = k.finish()
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import (
    AddressSpace,
    BasicBlock,
    Constant,
    Function,
    GlobalVariable,
    I1,
    I32,
    IRBuilder,
    ICmpPredicate,
    Module,
    Phi,
    PointerType,
    Type,
    Value,
    pointer,
)

GLOBAL_I32_PTR = pointer(I32, AddressSpace.GLOBAL)
SHARED_I32_PTR = pointer(I32, AddressSpace.SHARED)


class Var:
    """A mutable variable; the builder tracks its current SSA value."""

    def __init__(self, name: str, type_: Type, value: Value) -> None:
        self.name = name
        self.type = type_
        self.value = value

    def __repr__(self) -> str:
        return f"<Var {self.name}: {self.type!r}>"


class KernelBuilder:
    """Builds one kernel function with structured control flow."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        module: Optional[Module] = None,
    ) -> None:
        self.module = module or Module(name + "_module")
        self.function = Function(name, [t for _, t in params], [n for n, _ in params])
        self.module.add_function(self.function)
        self._builder = IRBuilder(self.function.add_block("entry"))
        self._vars: List[Var] = []
        self._finished = False

    # ---- parameters & memory -------------------------------------------------

    def param(self, name: str) -> Value:
        return self.function.arg_by_name(name)

    def shared_array(self, name: str, element_type: Type, count: int) -> GlobalVariable:
        """Declare a ``__shared__`` array (one copy per thread block)."""
        var = GlobalVariable(name, pointer(element_type, AddressSpace.SHARED), count)
        return self.module.add_global(var)

    # ---- plumbing ------------------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        return self._builder.block

    def __getattr__(self, item):
        # Arithmetic/memory one-liners delegate to the low-level IRBuilder
        # (add, mul, icmp, load, store, gep, select, thread_id, barrier...).
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self._builder, item)

    def const(self, value: int, type_: Type = I32) -> Constant:
        return Constant(type_, value)

    def load_at(self, base: Value, index: Value, name: str = "") -> Value:
        return self._builder.load(self._builder.gep(base, index), name)

    def store_at(self, base: Value, index: Value, value: Value) -> None:
        self._builder.store(value, self._builder.gep(base, index))

    def global_thread_id(self, name: str = "gtid") -> Value:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        b = self._builder
        return b.add(b.mul(b.block_id(), b.block_dim()), b.thread_id(), name)

    # ---- mutable variables ---------------------------------------------------

    def var(self, name: str, init: Value) -> Var:
        v = Var(name, init.type, init)
        self._vars.append(v)
        return v

    def get(self, var: Var) -> Value:
        return var.value

    def set(self, var: Var, value: Value) -> None:
        if value.type is not var.type:
            raise TypeError(f"assigning {value.type!r} to {var!r}")
        var.value = value

    # ---- structured control flow ----------------------------------------------

    def if_(
        self,
        cond: Value,
        then_fn: Callable[[], None],
        else_fn: Optional[Callable[[], None]] = None,
        name: str = "if",
    ) -> None:
        """``if (cond) then_fn() else else_fn()`` with automatic φs."""
        snapshot = {v: v.value for v in self._vars}
        then_block = self.function.add_block(f"{name}.then", after=self.block)
        else_block = (
            self.function.add_block(f"{name}.else", after=then_block)
            if else_fn is not None else None
        )
        # NOTE: blocks define __len__, so `or`-chains on possibly-empty
        # blocks would misfire; compare against None explicitly.
        merge_block = self.function.add_block(
            f"{name}.end",
            after=then_block if else_block is None else else_block)

        false_target = merge_block if else_block is None else else_block
        self._builder.cond_br(cond, then_block, false_target)
        branch_block = self.block

        self._builder.position_at_end(then_block)
        then_fn()
        then_end = self.block
        then_values = {v: v.value for v in self._vars}
        self._builder.br(merge_block)

        for v, value in snapshot.items():
            v.value = value
        if else_block is not None:
            self._builder.position_at_end(else_block)
            else_fn()
            else_end = self.block
            self._builder.br(merge_block)
        else:
            else_end = branch_block
        else_values = {v: v.value for v in self._vars}

        self._builder.position_at_end(merge_block)
        for v in self._vars:
            if v not in snapshot:
                # Declared inside a branch; it must not escape the branch
                # (the verifier flags any use past the merge point).
                continue
            tval, fval = then_values[v], else_values.get(v, snapshot[v])
            if tval is fval:
                v.value = tval
                continue
            phi = self._builder.phi(v.type, v.name)
            phi.add_incoming(tval, then_end)
            phi.add_incoming(fval, else_end)
            v.value = phi

    def while_(
        self,
        cond_fn: Callable[[], Value],
        body_fn: Callable[[], None],
        name: str = "loop",
    ) -> None:
        """``while (cond_fn()) body_fn()`` with loop-header φs.

        Header φs are created for every live variable and the trivial ones
        (never reassigned in the body) are folded away afterwards.
        """
        preheader = self.block
        header = self.function.add_block(f"{name}.header", after=preheader)
        self._builder.br(header)
        self._builder.position_at_end(header)

        phis: Dict[Var, Phi] = {}
        for v in self._vars:
            phi = self._builder.phi(v.type, v.name)
            phi.add_incoming(v.value, preheader)
            phis[v] = phi
            v.value = phi

        cond = cond_fn()
        if cond.type is not I1:
            raise TypeError("loop condition must be i1")
        body = self.function.add_block(f"{name}.body", after=header)
        exit_block = self.function.add_block(f"{name}.exit", after=body)
        self._builder.cond_br(cond, body, exit_block)

        self._builder.position_at_end(body)
        body_fn()
        latch = self.block
        self._builder.br(header)
        for v, phi in phis.items():
            phi.add_incoming(v.value, latch)

        self._builder.position_at_end(exit_block)
        for v, phi in phis.items():
            v.value = self._fold_trivial_phi(phi)

    def _fold_trivial_phi(self, phi: Phi) -> Value:
        """Replace ``phi [x, a], [x|phi, b]`` with ``x``; else keep it."""
        distinct = [v for v in phi.incoming_values if v is not phi]
        unique: List[Value] = []
        for v in distinct:
            if all(v is not u for u in unique):
                unique.append(v)
        if len(unique) == 1:
            replacement = unique[0]
            phi.replace_all_uses_with(replacement)
            phi.erase_from_parent()
            return replacement
        return phi

    def for_range(
        self,
        name: str,
        start: Value,
        stop: Value,
        body_fn: Callable[[Value], None],
        step: Optional[Value] = None,
    ) -> None:
        """``for (i = start; i < stop; i += step) body_fn(i)``."""
        step = step or self.const(1, start.type)
        i = self.var(name, start)

        def cond():
            return self._builder.icmp(ICmpPredicate.SLT, i.value, stop)

        def body():
            body_fn(i.value)
            self.set(i, self._builder.add(i.value, step, name + ".next"))

        self.while_(cond, body, name=name + ".for")

    # ---- finalization ----------------------------------------------------------

    def finish(self) -> Function:
        """Terminate with ``ret`` and verify the generated SSA."""
        if self._finished:
            raise RuntimeError("kernel already finished")
        self._finished = True
        self._builder.ret()
        from repro.ir import verify_function

        verify_function(self.function)
        return self.function
