"""SARIF 2.1.0 rendering of lint reports.

The kernels have no source files — the IR lives in memory — so results
carry *logical* locations only (``fullyQualifiedName`` =
``function:block``), which SARIF supports for exactly this case.  One
``run`` covers all linted functions; the rule catalog is embedded in
``tool.driver.rules`` so viewers (GitHub code scanning, VS Code SARIF
viewer) can show descriptions without the repo.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .diagnostics import Diagnostic, LintReport, Severity
from .engine import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"


def _rule_descriptor(rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.description or rule.id},
        "defaultConfiguration": {
            "level": Severity.SARIF_LEVEL[rule.severity],
        },
    }


def _result(diag: Diagnostic) -> Dict[str, object]:
    qualified = diag.function
    if diag.block is not None:
        qualified += f":{diag.block}"
    message = diag.message
    if diag.instruction:
        message += f" | {diag.instruction}"
    result: Dict[str, object] = {
        "ruleId": diag.rule,
        "level": Severity.SARIF_LEVEL[diag.severity],
        "message": {"text": message},
        "locations": [{
            "logicalLocations": [{
                "fullyQualifiedName": qualified,
                "name": diag.block or diag.function,
                "kind": "function" if diag.block is None else "member",
            }],
        }],
    }
    if diag.data:
        result["properties"] = {str(k): v for k, v in diag.data.items()}
    return result


def to_sarif(reports: Iterable[LintReport]) -> Dict[str, object]:
    """One SARIF log document covering ``reports``."""
    results: List[Dict[str, object]] = []
    for report in reports:
        results.extend(_result(d) for d in report.diagnostics)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": "https://example.invalid/repro-lint",
                    "rules": [_rule_descriptor(r) for r in all_rules()],
                },
            },
            "results": results,
        }],
    }


def write_sarif(path: str, reports: Iterable[LintReport]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(reports), handle, indent=2, sort_keys=True)
        handle.write("\n")
