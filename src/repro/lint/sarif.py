"""SARIF 2.1.0 rendering of lint reports.

The kernels have no source files — the IR lives in memory — so every
result carries a *logical* location (``fullyQualifiedName`` =
``function:block``), and, when the diagnostic has a printed-IR anchor,
a *physical* location as well: the artifact is the printed IR of the
linted function (``ir/<function>.ir``), embedded into the run's
``artifacts`` array with its full text so SARIF viewers (GitHub code
scanning, VS Code) can highlight the exact ``line:column`` region
without any file on disk.  One ``run`` covers all linted functions; the
rule catalog is embedded in ``tool.driver.rules`` so viewers can show
descriptions without the repo.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .diagnostics import Diagnostic, LintReport, Severity
from .engine import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"


def _rule_descriptor(rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.description or rule.id},
        "defaultConfiguration": {
            "level": Severity.SARIF_LEVEL[rule.severity],
        },
    }


def _artifact_uri(function: str) -> str:
    return f"ir/{function}.ir"


def _result(diag: Diagnostic, artifact_index: Optional[int],
            artifact_uri: Optional[str]) -> Dict[str, object]:
    qualified = diag.function
    if diag.block is not None:
        qualified += f":{diag.block}"
    message = diag.message
    if diag.instruction:
        message += f" | {diag.instruction}"
    location: Dict[str, object] = {
        "logicalLocations": [{
            "fullyQualifiedName": qualified,
            "name": diag.block or diag.function,
            "kind": "function" if diag.block is None else "member",
        }],
    }
    if diag.line is not None and artifact_index is not None:
        location["physicalLocation"] = {
            "artifactLocation": {
                "uri": artifact_uri,
                "index": artifact_index,
            },
            "region": {
                "startLine": diag.line,
                "startColumn": diag.column or 1,
            },
        }
    result: Dict[str, object] = {
        "ruleId": diag.rule,
        "level": Severity.SARIF_LEVEL[diag.severity],
        "message": {"text": message},
        "locations": [location],
    }
    if diag.data:
        result["properties"] = {str(k): v for k, v in diag.data.items()}
    return result


def to_sarif(reports: Iterable[LintReport]) -> Dict[str, object]:
    """One SARIF log document covering ``reports``."""
    reports = list(reports)
    # One embedded artifact per dirty report: the printed IR that
    # report's line/column coordinates index into.  The same kernel can
    # appear once per opt level with different IR, so artifacts are
    # per-report, not per-function (repeats get a numbered uri).
    artifacts: List[Dict[str, object]] = []
    results: List[Dict[str, object]] = []
    seen_uris: Dict[str, int] = {}
    for report in reports:
        index: Optional[int] = None
        uri: Optional[str] = None
        if report.ir_text is not None:
            uri = _artifact_uri(report.function)
            repeat = seen_uris.get(uri, 0)
            seen_uris[uri] = repeat + 1
            if repeat:
                uri = _artifact_uri(f"{report.function}.{repeat}")
            index = len(artifacts)
            artifacts.append({
                "location": {"uri": uri},
                "sourceLanguage": "llvm-ir",
                "contents": {"text": report.ir_text},
            })
        results.extend(_result(d, index, uri) for d in report.diagnostics)
    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": "https://example.invalid/repro-lint",
                "rules": [_rule_descriptor(r) for r in all_rules()],
            },
        },
        "results": results,
    }
    if artifacts:
        run["artifacts"] = artifacts
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def write_sarif(path: str, reports: Iterable[LintReport]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(reports), handle, indent=2, sort_keys=True)
        handle.write("\n")
