"""The built-in rule set.

Each rule encodes one GPU-semantics contract the verifier cannot see
(:mod:`repro.ir.verifier` checks SSA shape; these check *meaning*):

* ``barrier-divergence`` — a barrier reachable only under divergent
  control flow deadlocks a real GPU (§II-B; GPUVerify's barrier
  divergence condition).
* ``shared-memory-race`` — a divergent-indexed shared store followed by
  a load of the same array with no barrier in between reads another
  thread's slot before it is published (the difftest generator's race
  discipline, enforced statically).
* ``undef-use`` — control flow on undef is meaningless (error); data
  flow through undef (selects, stores) is suspicious but defined
  behaviour in this IR (warning) — legal late if-conversion hoists CFM
  selects above their guards.
* ``dead-store`` / ``unreachable-block`` — classic hygiene findings.
* ``out-of-bounds-access`` — a memory access through a GEP on a sized
  global whose index interval (``repro.analysis.ranges``) lies entirely
  outside the array: every executing thread faults.
* ``tautological-branch`` — a conditional branch whose condition the
  interval analysis decides statically: the other side is dead weight
  (and, post-CFM, often a sign a guard lost its meaning).
* ``meld-legality`` — audits the CFM pass's own decision log: a melded
  region's entry branch must have been divergent (Definition 5), the
  guard blocks unpredication created for side-effecting runs must still
  be guarded by a conditional branch (§IV-E), and a meld whose symbolic
  translation validation (``repro.analysis.validate``) came back
  ``INEQUIVALENT`` is reported as an error.

Importing this module populates the registry; :mod:`repro.lint.engine`
stays rule-agnostic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function, GlobalVariable
from repro.ir.instructions import (
    Branch,
    Call,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, PointerType
from repro.ir.values import Undef, Value

from .diagnostics import Diagnostic, Severity
from .engine import LintContext, LintRule, register


def _shared_base(pointer: Value) -> Optional[Value]:
    """The shared-memory object ``pointer`` addresses, or None.

    Peels one GEP level (the IR has no nested GEPs) and accepts either a
    ``shared`` global or any value of shared-space pointer type.
    """
    base = pointer.base if isinstance(pointer, GetElementPtr) else pointer
    if isinstance(base, GlobalVariable):
        return base if base.is_shared else None
    base_type = getattr(base, "type", None)
    if isinstance(base_type, PointerType) and base_type.space == AddressSpace.SHARED:
        return base
    return None


def _gep_index(pointer: Value) -> Optional[Value]:
    return pointer.index if isinstance(pointer, GetElementPtr) else None


def _divergent_terms(index: Value, divergence) -> frozenset:
    """The divergent leaves of an additive index expression.

    ``add(mul(tid, 4), e)`` decomposes to ``{mul(tid, 4)}`` when ``e`` is
    uniform.  Two shared accesses whose indexes share the *same*
    divergent terms and differ only by uniform offsets follow the
    thread-private bucket discipline (each thread stays inside its own
    slot group), which the race rule exempts; accesses through
    *different* divergent expressions (``tid`` vs ``urem(tid+shift)``)
    are exactly the cross-thread handoffs that need a barrier.
    """
    from repro.ir.instructions import BinaryOp, Opcode

    terms = set()
    work = [index]
    while work:
        value = work.pop()
        if divergence.is_uniform(value):
            continue
        if isinstance(value, BinaryOp) and value.opcode == Opcode.ADD:
            work.extend(value.operands)
        else:
            terms.add(value)
    return frozenset(terms)


@register
class BarrierDivergenceRule(LintRule):
    """A barrier that only part of a warp reaches hangs the warp."""

    id = "barrier-divergence"
    severity = Severity.ERROR
    description = ("llvm.gpu.barrier call control-dependent on a divergent "
                   "branch: threads of one warp may disagree about reaching "
                   "it, which deadlocks real hardware")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for block in ctx.function.blocks:
            if block not in ctx.reachable:
                continue  # unreachable-block owns that finding
            for instr in block:
                if not (isinstance(instr, Call) and instr.is_barrier):
                    continue
                if ctx.divergence_guarded(block):
                    yield self.diag(
                        ctx,
                        "barrier is only reached under a divergent branch",
                        block=block, instruction=instr)


class _RaceScan:
    """Forward walk from one divergent shared store, cut by barriers."""

    def __init__(self, ctx: LintContext, store: Store, base: Value) -> None:
        self.ctx = ctx
        self.store = store
        self.base = base
        index = _gep_index(store.pointer)
        self.store_terms = (_divergent_terms(index, ctx.divergence)
                            if index is not None else frozenset())

    def conflicting_load(self) -> Optional[Load]:
        block = self.store.parent
        instrs = block.instructions
        tail = instrs[instrs.index(self.store) + 1:]
        hit, cut = self._scan(tail)
        if hit is not None or cut:
            return hit
        seen: Set[BasicBlock] = {block}
        work: List[BasicBlock] = list(block.succs)
        while work:
            succ = work.pop()
            if succ in seen:
                continue
            seen.add(succ)
            hit, cut = self._scan(succ.instructions)
            if hit is not None:
                return hit
            if not cut:
                work.extend(succ.succs)
        return None

    def _scan(self, instrs) -> Tuple[Optional[Load], bool]:
        """(conflicting load, walk-was-cut-by-barrier) over one run."""
        for instr in instrs:
            if isinstance(instr, Call) and instr.is_barrier:
                return None, True
            if (isinstance(instr, Load)
                    and _shared_base(instr.pointer) is self.base
                    and self._conflicts(instr)):
                return instr, False
        return None, False

    def _conflicts(self, load: Load) -> bool:
        """A load conflicts unless it provably stays in the storing
        thread's own slots: same SSA pointer, or an index sharing the
        store's divergent terms with only uniform offsets on top."""
        if load.pointer is self.store.pointer:
            return False
        index = _gep_index(load.pointer)
        if index is None:
            return True
        return (_divergent_terms(index, self.ctx.divergence)
                != self.store_terms)


@register
class SharedMemoryRaceRule(LintRule):
    """store shared[divergent]; …no barrier…; load shared[other]."""

    id = "shared-memory-race"
    severity = Severity.ERROR
    description = ("a divergent-indexed store to shared memory is read "
                   "back through a different address with no intervening "
                   "barrier: the load may observe another thread's slot "
                   "before it is written")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        divergence = ctx.divergence
        for block in ctx.function.blocks:
            if block not in ctx.reachable:
                continue
            for instr in block:
                if not isinstance(instr, Store):
                    continue
                base = _shared_base(instr.pointer)
                if base is None:
                    continue
                index = _gep_index(instr.pointer)
                if index is None or divergence.is_uniform(index):
                    continue
                load = _RaceScan(ctx, instr, base).conflicting_load()
                if load is not None:
                    yield self.diag(
                        ctx,
                        f"store to shared {base.name!r} reaches a load of "
                        f"the same array (in %{load.parent.name}) with no "
                        f"intervening barrier",
                        block=block, instruction=instr,
                        load_block=load.parent.name)


@register
class UndefUseRule(LintRule):
    """Control or data flow through an undef value."""

    id = "undef-use"
    severity = Severity.WARNING
    description = ("an undef value feeds control flow (error) or memory / "
                   "select data flow (warning); φ incomings are exempt — "
                   "SSA construction and unpredication create them legally")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for block in ctx.function.blocks:
            if block not in ctx.reachable:
                continue
            for instr in block:
                if isinstance(instr, Phi):
                    continue
                if isinstance(instr, Branch):
                    if instr.is_conditional and isinstance(instr.condition, Undef):
                        yield self.diag(
                            ctx, "branch on undef condition",
                            block=block, instruction=instr,
                            severity=Severity.ERROR)
                    continue
                if isinstance(instr, Select) and isinstance(instr.condition, Undef):
                    yield self.diag(
                        ctx, "select on undef condition (propagates undef)",
                        block=block, instruction=instr)
                    continue
                if isinstance(instr, Store) and (
                        isinstance(instr.value, Undef)
                        or isinstance(instr.pointer, Undef)):
                    yield self.diag(
                        ctx, "store of/through undef",
                        block=block, instruction=instr)


@register
class DeadStoreRule(LintRule):
    """Two stores to one SSA pointer with nothing reading in between."""

    id = "dead-store"
    severity = Severity.WARNING
    description = ("a store is overwritten by a later store to the same "
                   "SSA pointer in the same block with no intervening "
                   "read, call, or barrier")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for block in ctx.function.blocks:
            pending: dict = {}
            for instr in block:
                if isinstance(instr, Store):
                    earlier = pending.get(instr.pointer)
                    if earlier is not None:
                        yield self.diag(
                            ctx, "store overwritten before being read",
                            block=block, instruction=earlier)
                    pending[instr.pointer] = instr
                elif instr.may_read_memory or isinstance(instr, Call):
                    pending.clear()


@register
class UnreachableBlockRule(LintRule):
    """Blocks the entry cannot reach."""

    id = "unreachable-block"
    severity = Severity.WARNING
    description = "a basic block is unreachable from the function entry"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for block in ctx.function.blocks:
            if block not in ctx.reachable:
                yield self.diag(ctx, "block is unreachable from entry",
                                block=block)


@register
class OutOfBoundsAccessRule(LintRule):
    """A GEP index interval provably outside its global's bounds."""

    id = "out-of-bounds-access"
    severity = Severity.ERROR
    description = ("a load/store addresses a sized global through an index "
                   "whose value range lies entirely outside the array — "
                   "every thread that executes the access faults")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for block in ctx.function.blocks:
            if block not in ctx.reachable:
                continue
            for instr in block:
                pointer = getattr(instr, "pointer", None)
                if not isinstance(instr, (Load, Store)) or \
                        not isinstance(pointer, GetElementPtr):
                    continue
                base = pointer.base
                if not isinstance(base, GlobalVariable):
                    continue
                interval = ctx.ranges.range_of(pointer.index)
                if interval.empty:
                    continue  # dynamically unreachable computation
                if not interval.intersects(0, base.element_count - 1):
                    yield self.diag(
                        ctx,
                        f"index range {interval} never falls inside "
                        f"@{base.name}[0..{base.element_count - 1}]",
                        block=block, instruction=instr,
                        array=base.name,
                        element_count=base.element_count)


@register
class TautologicalBranchRule(LintRule):
    """A conditional branch the interval analysis decides statically."""

    id = "tautological-branch"
    severity = Severity.WARNING
    description = ("a conditional branch's condition is decided by the "
                   "value-range analysis (always true or always false): "
                   "one successor is statically dead, which usually means "
                   "a guard that lost its meaning or a missed fold")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        from repro.ir.values import Constant

        for block in ctx.function.blocks:
            if block not in ctx.reachable:
                continue
            term = block.terminator
            if not isinstance(term, Branch) or not term.is_conditional:
                continue
            condition = term.condition
            if isinstance(condition, (Constant, Undef)):
                continue  # simplifycfg / undef-use own those findings
            decided = ctx.ranges.decided_condition(condition)
            if decided is not None:
                dead = (term.false_successor if decided
                        else term.true_successor)
                yield self.diag(
                    ctx,
                    f"branch condition is always {str(decided).lower()}; "
                    f"%{dead.name} is statically dead",
                    block=block, instruction=term,
                    always=decided, dead_successor=dead.name)


@register
class MeldLegalityRule(LintRule):
    """Audit the CFM pass's decisions against the divergence analysis."""

    id = "meld-legality"
    severity = Severity.ERROR
    description = ("a melded region's entry branch must have been "
                   "divergent (Definition 5), every guard block "
                   "unpredication created for a side-effecting run must "
                   "still sit behind a conditional branch (§IV-E), and "
                   "no accepted meld may carry an INEQUIVALENT "
                   "translation-validation verdict")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for decision in ctx.decisions:
            if not getattr(decision, "accepted", False):
                continue
            if getattr(decision, "validation", None) == "INEQUIVALENT":
                yield self.diag(
                    ctx,
                    f"meld at %{decision.region_entry} failed symbolic "
                    f"translation validation (INEQUIVALENT): the rewrite "
                    f"provably changes an observable under some mask case",
                    region_entry=decision.region_entry,
                    iteration=decision.iteration)
            if getattr(decision, "branch_divergent", None) is False:
                yield self.diag(
                    ctx,
                    f"region at %{decision.region_entry} was melded but "
                    f"its entry branch was uniform — CFM must only meld "
                    f"divergent branches",
                    region_entry=decision.region_entry,
                    iteration=decision.iteration)
            for name in getattr(decision, "guard_blocks", ()) or ():
                try:
                    guard = ctx.function.block_by_name(name)
                except KeyError:
                    continue  # cleaned up by a later pass — nothing to audit
                if not self._guarded(guard):
                    yield self.diag(
                        ctx,
                        f"unpredicated side-effecting block %{name} is no "
                        f"longer behind a conditional guard branch",
                        block=guard,
                        region_entry=decision.region_entry)

    @staticmethod
    def _guarded(block: BasicBlock) -> bool:
        preds = block.preds
        if len(preds) != 1:
            return False
        term = preds[0].terminator
        return isinstance(term, Branch) and term.is_conditional
