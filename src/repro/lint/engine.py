"""Rule registry and diagnostics engine.

A :class:`LintRule` inspects one function through a :class:`LintContext`
— a per-run cache of the analyses rules share (divergence, dominators,
post-dominance frontiers, loops, reachability), so ten rules cost one
fixpoint, not ten.  Rules register themselves in a module-level registry
(:func:`register`); :func:`run_lint` instantiates nothing — the registry
holds singleton rule objects, and all per-run state lives on the context.

The engine is observability-aware: under an ambient tracer
(:mod:`repro.obs`) every diagnostic is emitted as a ``lint:<rule>``
instant on the compile timeline, next to the pass spans and melding
decisions, so a Perfetto view of a compile shows *where in the pipeline*
each finding appeared.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.cfg import reachable_blocks
from repro.analysis.divergence import DivergenceInfo, cached_divergence
from repro.analysis.dominators import (
    DominatorTree,
    compute_dominator_tree,
    compute_postdominator_tree,
    postdominance_frontier,
)
from repro.analysis.loops import LoopInfo, compute_loop_info
from repro.analysis.ranges import ValueRanges, compute_ranges
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.printer import format_instruction
from repro.obs import COMPILE_PID, current_tracer

from .diagnostics import (
    DEFAULT_CONFIG,
    Diagnostic,
    LintConfig,
    LintReport,
    Severity,
)


class LintContext:
    """Shared state of one lint run: the function, the configuration,
    and lazily computed, memoized analyses."""

    def __init__(self, function: Function,
                 config: LintConfig = DEFAULT_CONFIG,
                 decisions: Optional[Sequence[object]] = None) -> None:
        self.function = function
        self.config = config
        #: the CFM pass's melding decision log, when the caller has one
        #: (:class:`repro.obs.MeldingDecision` records; consumed by the
        #: meld-legality audit)
        self.decisions: List[object] = list(decisions or [])
        self._divergence: Optional[DivergenceInfo] = None
        self._dominators: Optional[DominatorTree] = None
        self._postdominators: Optional[DominatorTree] = None
        self._pdf: Optional[Dict[BasicBlock, Set[BasicBlock]]] = None
        self._loops: Optional[LoopInfo] = None
        self._reachable: Optional[Set[BasicBlock]] = None
        self._divergent_deps: Dict[BasicBlock, bool] = {}
        self._ranges: Optional[ValueRanges] = None
        self._ir_lines: Optional[Dict[object, "Tuple[int, int]"]] = None

    # ---- memoized analyses ------------------------------------------------

    @property
    def divergence(self) -> DivergenceInfo:
        if self._divergence is None:
            self._divergence = cached_divergence(self.function)
        return self._divergence

    @property
    def dominators(self) -> DominatorTree:
        if self._dominators is None:
            self._dominators = compute_dominator_tree(self.function)
        return self._dominators

    @property
    def postdominators(self) -> DominatorTree:
        if self._postdominators is None:
            self._postdominators = compute_postdominator_tree(self.function)
        return self._postdominators

    @property
    def control_dependence(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Post-dominance frontier: ``b in PDF(a)`` means ``a`` executes
        (or not) depending on the branch in ``b``."""
        if self._pdf is None:
            self._pdf = postdominance_frontier(self.function,
                                               self.postdominators)
        return self._pdf

    @property
    def loops(self) -> LoopInfo:
        if self._loops is None:
            self._loops = compute_loop_info(self.function)
        return self._loops

    @property
    def reachable(self) -> Set[BasicBlock]:
        if self._reachable is None:
            self._reachable = reachable_blocks(self.function)
        return self._reachable

    @property
    def ranges(self) -> ValueRanges:
        """Interval value ranges (``repro.analysis.ranges``), seeded with
        the thread-geometry intrinsics' bounds — one sparse fixpoint
        shared by every range-based rule."""
        if self._ranges is None:
            self._ranges = compute_ranges(self.function)
        return self._ranges

    # ---- printed-IR locations ---------------------------------------------

    def printed_location(self, block: Optional[BasicBlock],
                         instruction: Optional[Instruction]
                         ) -> "Tuple[Optional[int], Optional[int]]":
        """(line, column), 1-indexed, of a finding's anchor inside
        :func:`repro.ir.printer.print_function` output.

        The map mirrors the printer's fixed layout — ``define`` on line
        1, then per block one label line followed by one line per
        instruction at two-space indentation — so no text parsing is
        needed and the answer stays exact as long as the diagnostic and
        the printed artifact come from the same IR state.
        """
        if self._ir_lines is None:
            lines: Dict[object, Tuple[int, int]] = {}
            line = 1  # line 1 is the "define" header
            for blk in self.function.blocks:
                line += 1
                lines[blk.name] = (line, 1)
                for instr in blk:
                    line += 1
                    lines[id(instr)] = (line, 3)
            self._ir_lines = lines
        if instruction is not None:
            found = self._ir_lines.get(id(instruction))
            if found is not None:
                return found
        if block is not None:
            found = self._ir_lines.get(block.name)
            if found is not None:
                return found
        return None, None

    # ---- derived queries --------------------------------------------------

    def divergence_guarded(self, block: BasicBlock) -> bool:
        """True when reaching ``block`` (or how many times it runs)
        depends on a *divergent* branch: the iterated control-dependence
        set of ``block`` contains a divergent-branch block.

        This is the §II-B reachability notion the barrier rule needs —
        loop bodies are control-dependent on their exiting branches, so
        a divergently-exiting loop taints everything it contains.
        """
        memo = self._divergent_deps
        if block in memo:
            return memo[block]
        pdf = self.control_dependence
        divergence = self.divergence
        seen: Set[BasicBlock] = {block}
        work = [block]
        guarded = False
        while work:
            node = work.pop()
            for dep in pdf.get(node, ()):
                if divergence.has_divergent_branch(dep):
                    guarded = True
                    work = []
                    break
                if dep not in seen:
                    seen.add(dep)
                    work.append(dep)
        for node in seen:
            # The closure is shared: every visited node has the same
            # verdict only when guarded is False; a positive verdict is
            # recorded for the queried block alone.
            if not guarded:
                memo[node] = False
        memo[block] = guarded
        return guarded


class LintRule:
    """One named diagnostic rule.

    Subclasses set :attr:`id`, :attr:`severity` (the default severity of
    their findings) and :attr:`description`, and implement
    :meth:`check`, yielding :class:`Diagnostic` objects (most easily via
    :meth:`diag`).
    """

    id: str = "rule"
    severity: str = Severity.WARNING
    description: str = ""

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: LintContext, message: str,
             block: Optional[BasicBlock] = None,
             instruction: Optional[Instruction] = None,
             severity: Optional[str] = None,
             **data: object) -> Diagnostic:
        """Build one diagnostic at the given location, applying the
        run's severity override for this rule."""
        default = severity if severity is not None else self.severity
        line, column = ctx.printed_location(block, instruction)
        return Diagnostic(
            rule=self.id,
            severity=ctx.config.severity_for(self.id, default),
            message=message,
            function=ctx.function.name,
            block=block.name if block is not None else None,
            instruction=(format_instruction(instruction)
                         if instruction is not None else None),
            line=line,
            column=column,
            data=dict(data),
        )

    def __repr__(self) -> str:
        return f"<LintRule {self.id!r}>"


#: rule id -> singleton rule instance
REGISTRY: Dict[str, LintRule] = {}


def register(rule_cls):
    """Class decorator: instantiate and register a :class:`LintRule`."""
    rule = rule_cls()
    if not rule.id or rule.id == "rule":
        raise ValueError(f"{rule_cls.__name__} must set a rule id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[LintRule]:
    """Every registered rule, in stable (id-sorted) order."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def get_rule(rule_id: str) -> LintRule:
    try:
        return REGISTRY[rule_id]
    except KeyError:
        raise ValueError(f"unknown lint rule {rule_id!r} "
                         f"(available: {sorted(REGISTRY)})") from None


def resolve_rules(rules: Optional[Sequence[Union[str, LintRule]]]
                  ) -> List[LintRule]:
    """Normalize a rule selection (names or instances) to instances."""
    if rules is None:
        return all_rules()
    resolved: List[LintRule] = []
    for entry in rules:
        resolved.append(entry if isinstance(entry, LintRule)
                        else get_rule(entry))
    return resolved


def run_lint(function: Function,
             rules: Optional[Sequence[Union[str, LintRule]]] = None,
             config: Optional[LintConfig] = None,
             decisions: Optional[Sequence[object]] = None) -> LintReport:
    """Run the (selected) rules over ``function`` and report.

    ``decisions`` is the CFM pass's melding decision log when the caller
    has one — required for the meld-legality audit to have anything to
    audit (without it the rule is a no-op).

    Under an ambient :mod:`repro.obs` tracer each diagnostic is emitted
    as a ``lint:<rule>`` instant event with the diagnostic as args.
    """
    config = config if config is not None else DEFAULT_CONFIG
    ctx = LintContext(function, config=config, decisions=decisions)
    report = LintReport(function=function.name)
    tracer = current_tracer()
    for rule in resolve_rules(rules):
        if not config.is_enabled(rule.id):
            continue
        report.rules_run.append(rule.id)
        for diagnostic in rule.check(ctx):
            report.diagnostics.append(diagnostic)
            if tracer.enabled:
                tracer.instant(f"lint:{diagnostic.rule}", cat="lint",
                               pid=COMPILE_PID,
                               args=diagnostic.as_dict())
    if report.diagnostics:
        # Capture the IR text the line/column coordinates index into, so
        # the SARIF writer can embed it as the physical artifact.  Only
        # paid on a dirty report — the hot differential-lint path stays
        # print-free.
        from repro.ir.printer import print_function
        report.ir_text = print_function(function)
    return report
