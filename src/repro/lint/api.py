"""Programmatic entry points: ``repro.lint(kernel)`` and level sweeps.

:func:`lint_kernel` is what the callable ``repro.lint`` package resolves
to — it lints a kernel-like object *as it currently is*.
:func:`lint_at_level` additionally compiles a kernel under one of the
difftest matrix's opt levels first, capturing the CFM decision log so
the meld-legality audit has material; the CLI and the kernels-clean
acceptance test are built on it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.ir.function import Function

from .diagnostics import LintConfig, LintReport
from .engine import LintRule, run_lint
from . import rules as _rules  # noqa: F401  (populates the registry)

#: the same opt levels the differential oracle's arms use
LINT_LEVELS = ("noopt", "o3", "o3-cfm", "o3-tail", "o3-bf")


def _as_function(kernel) -> Function:
    """Duck-typed kernel access, mirroring the facade: a raw Function,
    or anything carrying one (KernelBuilder, KernelCase, CompileReport)."""
    if isinstance(kernel, Function):
        return kernel
    inner = getattr(kernel, "function", None)
    if isinstance(inner, Function):
        return inner
    raise TypeError(
        f"expected a Function or an object with a .function, got {kernel!r}")


def _decisions_of(kernel) -> Optional[list]:
    """Pull a melding decision log off the object when it carries one
    (a facade CompileReport with cfm_stats, or a CFMStats itself)."""
    stats = getattr(kernel, "cfm_stats", None) or kernel
    decisions = getattr(stats, "decisions", None)
    return list(decisions) if decisions else None


def lint_kernel(kernel,
                rules: Optional[Sequence[Union[str, LintRule]]] = None,
                config: Optional[LintConfig] = None,
                decisions: Optional[Sequence[object]] = None) -> LintReport:
    """Lint a kernel-like object as-is (no compilation).

    When ``kernel`` is a facade ``CompileReport`` from a ``cfm=True``
    compile, its melding decision log is picked up automatically so the
    meld-legality audit runs without extra plumbing.
    """
    if decisions is None:
        decisions = _decisions_of(kernel)
    return run_lint(_as_function(kernel), rules=rules, config=config,
                    decisions=decisions)


def compile_at_level(function: Function, level: str,
                     cfm_config=None) -> Optional[list]:
    """Run one opt level's pipelines on ``function`` in place.

    Returns the CFM decision log for the ``o3-cfm`` level (None
    otherwise).  Levels mirror the differential oracle's arm matrix.
    """
    if level not in LINT_LEVELS:
        raise ValueError(
            f"unknown level {level!r}; expected one of {LINT_LEVELS}")
    if level == "noopt":
        return None
    # Deep imports on purpose: the lint package must stay importable
    # without dragging in the simulator, and the facade imports nothing
    # from here, so there is no cycle either way.
    from repro.transforms import late_pipeline, o3_pipeline

    o3_pipeline().run_to_fixpoint(function)
    if level == "o3":
        return None
    if level == "o3-cfm":
        from repro.core import CFMPass
        cfm = CFMPass(cfm_config)
        cfm.run(function)
        late_pipeline().run(function)
        return list(cfm.stats.decisions) if cfm.stats else None
    from repro.baselines import BranchFusionPass, TailMergingPass
    reducer = {"o3-tail": TailMergingPass, "o3-bf": BranchFusionPass}[level]()
    reducer.run(function)
    late_pipeline().run(function)
    return None


def lint_at_level(kernel, level: str,
                  rules: Optional[Sequence[Union[str, LintRule]]] = None,
                  config: Optional[LintConfig] = None,
                  cfm_config=None) -> LintReport:
    """Compile ``kernel`` in place at ``level``, then lint it.

    The ``o3-cfm`` level feeds the pass's decision log to the
    meld-legality audit.  Callers wanting several levels of one kernel
    must rebuild it per level — compilation mutates the IR.
    """
    function = _as_function(kernel)
    decisions = compile_at_level(function, level, cfm_config=cfm_config)
    return run_lint(function, rules=rules, config=config,
                    decisions=decisions)
