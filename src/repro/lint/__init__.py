"""``repro.lint`` — divergence-aware static diagnostics over the IR.

The package is *callable*: ``repro.lint(kernel)`` lints a kernel-like
object and returns a :class:`LintReport` (see :func:`lint_kernel`), and
``python -m repro.lint`` sweeps the benchmark kernels across opt levels
from the command line (JSON and SARIF output).

Rules encode GPU-semantics contracts the SSA verifier cannot express —
barriers under divergent control flow, shared-memory races across a
missing barrier, melds of uniform branches.  The same report powers the
differential-lint oracle in :mod:`repro.difftest`: no pass may introduce
a new error-severity diagnostic.  See ``docs/lint.md``.
"""

from __future__ import annotations

import sys
from types import ModuleType

from .diagnostics import (
    DEFAULT_CONFIG,
    Diagnostic,
    LintConfig,
    LintReport,
    Severity,
    merge_reports,
    worst_severity,
)
from .engine import (
    LintContext,
    LintRule,
    all_rules,
    get_rule,
    register,
    resolve_rules,
    run_lint,
)
from . import rules as rules  # populates the registry on import
from .api import LINT_LEVELS, compile_at_level, lint_at_level, lint_kernel
from .sarif import to_sarif, write_sarif

__all__ = [
    "Severity", "Diagnostic", "LintConfig", "DEFAULT_CONFIG", "LintReport",
    "merge_reports", "worst_severity",
    "LintContext", "LintRule", "register", "all_rules", "get_rule",
    "resolve_rules", "run_lint", "rules",
    "LINT_LEVELS", "compile_at_level", "lint_at_level", "lint_kernel",
    "to_sarif", "write_sarif",
]


class _CallableLintModule(ModuleType):
    """Lets ``repro.lint`` be used as a function.

    ``import repro.lint`` binds the submodule as an attribute of
    ``repro``, which would otherwise shadow any facade function of the
    same name — so instead the module *itself* is callable, delegating
    to :func:`lint_kernel`.
    """

    def __call__(self, kernel, **kwargs) -> LintReport:
        return lint_kernel(kernel, **kwargs)


sys.modules[__name__].__class__ = _CallableLintModule
