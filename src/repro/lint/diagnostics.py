"""Diagnostic schema of the lint layer.

A :class:`Diagnostic` is one finding of one rule: rule id, severity,
human message, and a location (function / block / instruction, the
instruction rendered through the IR printer so a diagnostic reads like
the IR it points at).  :class:`LintReport` aggregates the findings of
one :func:`repro.lint.run_lint` invocation and is the unit the
differential-lint oracle compares across passes.

Severity semantics (mirrors the verifier/warning split of real
compilers):

* ``error`` — the IR violates a GPU-semantics contract (barrier under
  divergent control flow, a shared-memory race, an illegal meld).  The
  differential oracle treats a *new* error after a pass as that pass's
  failure, and the CLI exits non-zero.
* ``warning`` — suspicious but not certainly broken (dead stores,
  select-on-undef: legal late if-conversion hoists CFM selects above
  their guards — PR 2's lesson — so runtime undef propagation is the
  defined behaviour).
* ``info`` — advisory findings.

:class:`LintConfig` is the suppression/override surface: disable rules
wholesale or re-map a rule's severity (e.g. promote ``dead-store`` to
``error`` in a strict CI lane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class Severity:
    """Diagnostic severity levels, most severe first."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    ALL = (ERROR, WARNING, INFO)
    #: SARIF 2.1.0 ``level`` values for each severity
    SARIF_LEVEL = {ERROR: "error", WARNING: "warning", INFO: "note"}

    _rank = {ERROR: 0, WARNING: 1, INFO: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        """Sort key: lower is more severe."""
        return cls._rank.get(severity, len(cls._rank))

    @classmethod
    def at_least(cls, severity: str, threshold: str) -> bool:
        """True if ``severity`` is as severe as ``threshold`` or more."""
        return cls.rank(severity) <= cls.rank(threshold)


@dataclass
class Diagnostic:
    """One finding of one rule at one IR location."""

    rule: str
    severity: str
    message: str
    function: str
    #: block label the finding anchors to (None for whole-function findings)
    block: Optional[str] = None
    #: offending instruction rendered via the IR printer
    instruction: Optional[str] = None
    #: 1-indexed position inside the printed-IR artifact
    #: (:func:`repro.ir.printer.print_function` of the linted function);
    #: None when the finding has no block/instruction anchor
    line: Optional[int] = None
    column: Optional[int] = None
    #: extra machine-readable facts (rule-specific)
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def is_error(self) -> bool:
        return self.severity == Severity.ERROR

    @property
    def location(self) -> str:
        """``@function`` / ``@function:%block`` rendering."""
        where = f"@{self.function}"
        if self.block is not None:
            where += f":%{self.block}"
        return where

    def fingerprint(self) -> Tuple[str, str, Optional[str]]:
        """Identity of the finding for cross-report comparison.

        Deliberately excludes the message and the rendered instruction:
        value names shift as passes rewrite the IR, and the differential
        oracle must not report a renamed finding as a new one.
        """
        return (self.rule, self.function, self.block)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
        }
        if self.line is not None:
            record["line"] = self.line
            record["column"] = self.column
        if self.data:
            record["data"] = dict(self.data)
        return record

    def render(self) -> str:
        """One-line human rendering, grep-friendly."""
        line = f"{self.severity}[{self.rule}] {self.location}: {self.message}"
        if self.instruction:
            line += f"\n    {self.instruction}"
        return line


@dataclass
class LintConfig:
    """Suppression and severity-override configuration.

    ``disabled`` names rules that do not run at all;
    ``severity_overrides`` re-maps a rule's reported severity (must be a
    member of :data:`Severity.ALL`).
    """

    disabled: Set[str] = field(default_factory=set)
    severity_overrides: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.disabled = set(self.disabled)
        for rule, severity in self.severity_overrides.items():
            if severity not in Severity.ALL:
                raise ValueError(
                    f"bad severity override {severity!r} for rule {rule!r} "
                    f"(expected one of {Severity.ALL})")

    def is_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disabled

    def severity_for(self, rule_id: str, default: str) -> str:
        return self.severity_overrides.get(rule_id, default)


#: shared default configuration (nothing disabled, nothing overridden)
DEFAULT_CONFIG = LintConfig()


@dataclass
class LintReport:
    """Every diagnostic one :func:`run_lint` invocation produced."""

    function: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rules that actually ran (after config suppression), in run order
    rules_run: List[str] = field(default_factory=list)
    #: printed IR of the linted function, captured when the report is
    #: dirty — the artifact the diagnostics' line/column point into
    ir_text: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the report holds no error-severity diagnostics."""
        return not self.errors

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def error_fingerprints(self) -> Set[Tuple[str, str, Optional[str]]]:
        return {d.fingerprint() for d in self.errors}

    def new_errors(self, baseline: "LintReport") -> List[Diagnostic]:
        """Errors in this report absent from ``baseline``.

        The differential-lint oracle's comparison: a pass is guilty when
        it *introduces* an error the input IR did not already carry.
        Comparison is by rule id (not fingerprint): passes rename and
        restructure blocks, so a pre-existing finding that moved must
        not read as new.
        """
        baseline_rules = {d.rule for d in baseline.errors}
        return [d for d in self.errors if d.rule not in baseline_rules]

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "rules_run": list(self.rules_run),
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.diagnostics)
                - len(self.errors) - len(self.warnings),
            },
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render(self, min_severity: str = Severity.INFO) -> str:
        """Multi-line human rendering of the report."""
        shown = [d for d in self.diagnostics
                 if Severity.at_least(d.severity, min_severity)]
        if not shown:
            return f"@{self.function}: clean ({len(self.rules_run)} rules)"
        lines = [f"@{self.function}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        for diag in sorted(shown, key=lambda d: (Severity.rank(d.severity),
                                                 d.rule, d.block or "")):
            lines.append("  " + diag.render().replace("\n", "\n  "))
        return "\n".join(lines)


def merge_reports(reports: Iterable[LintReport]) -> List[Diagnostic]:
    """Flatten many reports into one diagnostic list (CLI summary)."""
    merged: List[Diagnostic] = []
    for report in reports:
        merged.extend(report.diagnostics)
    return merged


def worst_severity(diagnostics: Sequence[Diagnostic]) -> Optional[str]:
    """The most severe severity present, or None for an empty list."""
    if not diagnostics:
        return None
    return min((d.severity for d in diagnostics), key=Severity.rank)
