"""``python -m repro.lint`` — lint benchmark kernels across opt levels.

Compiles each selected kernel at each selected level (rebuilding the
kernel per level: compilation mutates the IR) and lints the result::

    python -m repro.lint                          # every kernel, every level
    python -m repro.lint --kernels BIT,PCM --levels o3,o3-cfm
    python -m repro.lint --sarif lint.sarif --json lint.json
    python -m repro.lint --fail-on warning        # strict lane
    python -m repro.lint --list-rules             # print the rule catalog
    python -m repro.lint --validate-melds         # + translation validation

Exit status is 1 when any diagnostic at or above ``--fail-on``
(default: error) was produced, 0 otherwise — the CI lint job is exactly
this invocation plus the SARIF artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

from .api import LINT_LEVELS, compile_at_level
from .diagnostics import LintConfig, LintReport, Severity
from .engine import run_lint
from .sarif import write_sarif


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Run the IR lint rules over benchmark kernels.")
    parser.add_argument(
        "--kernels", default="all",
        help="comma-separated kernel names from repro.kernels.ALL_BUILDERS "
             "(default: all)")
    parser.add_argument(
        "--levels", default="all",
        help=f"comma-separated opt levels out of {','.join(LINT_LEVELS)} "
             f"(default: all)")
    parser.add_argument(
        "--disable", default="",
        help="comma-separated rule ids to suppress")
    parser.add_argument(
        "--fail-on", default=Severity.ERROR, choices=list(Severity.ALL),
        help="exit non-zero when a diagnostic at/above this severity "
             "appears (default: error)")
    parser.add_argument(
        "--min-severity", default=Severity.WARNING,
        choices=list(Severity.ALL),
        help="lowest severity to print (default: warning)")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write a SARIF 2.1.0 report")
    parser.add_argument("--json", metavar="FILE",
                        help="write the raw reports as JSON")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules (id, default severity, "
             "description) and exit")
    parser.add_argument(
        "--validate-melds", action="store_true",
        help="run the CFM pass with symbolic translation validation "
             "enabled at the o3-cfm level; verdicts feed the "
             "meld-legality audit (INEQUIVALENT melds become errors) "
             "and a per-kernel verdict summary is printed")
    return parser.parse_args(argv)


def _list_rules() -> int:
    from .engine import all_rules

    rules = all_rules()
    width = max(len(rule.id) for rule in rules)
    for rule in rules:
        print(f"{rule.id:<{width}}  {rule.severity:<7}  {rule.description}")
    print(f"{len(rules)} rule(s)")
    return 0


def _select(csv: str, universe, what: str) -> List[str]:
    if csv == "all":
        return list(universe)
    picked = [entry.strip() for entry in csv.split(",") if entry.strip()]
    unknown = [p for p in picked if p not in universe]
    if unknown:
        raise SystemExit(f"unknown {what}: {', '.join(unknown)} "
                         f"(available: {', '.join(universe)})")
    return picked


def run(argv=None) -> int:
    args = _parse_args(argv)
    if args.list_rules:
        return _list_rules()
    from repro.kernels import ALL_BUILDERS

    kernels = _select(args.kernels, ALL_BUILDERS, "kernels")
    levels = _select(args.levels, LINT_LEVELS, "levels")
    config = LintConfig(disabled={r.strip() for r in args.disable.split(",")
                                  if r.strip()})
    cfm_config = None
    if args.validate_melds:
        from repro.core import CFMConfig
        cfm_config = CFMConfig(validate=True)

    reports: List[Tuple[str, str, LintReport]] = []
    verdicts: Dict[str, int] = {}
    for name in kernels:
        for level in levels:
            case = ALL_BUILDERS[name]()
            function = case.function
            decisions = compile_at_level(function, level,
                                         cfm_config=cfm_config)
            report = run_lint(function, config=config, decisions=decisions)
            reports.append((name, level, report))
            for decision in decisions or []:
                verdict = getattr(decision, "validation", None)
                if verdict is not None:
                    verdicts[verdict] = verdicts.get(verdict, 0) + 1

    worst_hit = False
    shown = 0
    for name, level, report in reports:
        visible = [d for d in report.diagnostics
                   if Severity.at_least(d.severity, args.min_severity)]
        if any(Severity.at_least(d.severity, args.fail_on)
               for d in report.diagnostics):
            worst_hit = True
        if visible:
            shown += len(visible)
            print(f"== {name} @ {level}")
            print(report.render(min_severity=args.min_severity))

    total = sum(len(r.diagnostics) for _, _, r in reports)
    errors = sum(len(r.errors) for _, _, r in reports)
    warnings = sum(len(r.warnings) for _, _, r in reports)
    print(f"linted {len(kernels)} kernel(s) x {len(levels)} level(s): "
          f"{errors} error(s), {warnings} warning(s), "
          f"{total - errors - warnings} info")
    if args.validate_melds:
        summary = ", ".join(f"{k}={v}" for k, v in sorted(verdicts.items())) \
            or "no melds"
        print(f"meld translation validation: {summary}")

    if args.sarif:
        write_sarif(args.sarif, [r for _, _, r in reports])
        print(f"SARIF report written to {args.sarif}")
    if args.json:
        payload = {
            "version": 1,
            "reports": [{"kernel": name, "level": level, **report.as_dict()}
                        for name, level, report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"JSON report written to {args.json}")

    return 1 if worst_hit else 0


def main(argv=None) -> None:
    sys.exit(run(argv))
